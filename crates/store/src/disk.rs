//! [`DiskManager`]: fixed-size page slots in one backing file, with a
//! sharded allocation bitmap and per-slot CRC headers.
//!
//! # File layout
//!
//! ```text
//! [file header: magic (8) | page_size u32 LE | reserved u32]      16 bytes
//! [slot 0: meta (16) | page bytes (page_size)]
//! [slot 1: meta (16) | page bytes (page_size)]
//! ...
//! slot meta = page id u64 LE | crc32 u32 LE | flags u32 LE
//! ```
//!
//! The CRC covers the page-id bytes followed by the page bytes, so a slot
//! whose header and data were not written together (a torn frame) fails
//! verification on read. Page ids are sparse (clients address disjoint
//! ranges offset by 100 M pages), so slots are assigned through a
//! [`ShardedBitmap`] — independently locked [`AllocationBitmap`] stripes
//! interleaved across the slot space — and an in-memory `page → slot`
//! directory striped the same way; both are rebuilt by scanning the slot
//! headers when the file is opened. Freeing a page zeroes its slot meta and
//! returns the slot to its bitmap stripe.
//!
//! # Locking
//!
//! The manager is internally synchronized and every method takes `&self`:
//!
//! * file I/O uses positioned reads/writes (`pread`/`pwrite`), so no seek
//!   cursor is shared and distinct slots never contend;
//! * the `page → slot` directory is striped by page hash; a lookup takes
//!   one stripe mutex for the map access only, never across an I/O call;
//! * each bitmap stripe has its own mutex, taken *inside* a directory
//!   stripe lock when a write allocates (lock order: directory stripe →
//!   bitmap stripe, never the reverse).
//!
//! Races on the *same* page (two concurrent writes, a write and a free) are
//! excluded by the caller — the buffer pool's per-frame latches admit one
//! writer per page — so slot assignments observed through the directory are
//! stable for the duration of an I/O call.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Mutex;

use cache_sim::sync::recover_lock;
use cache_sim::{page_partition, FastHashMap, PageId};

use crate::crc::Crc32;
use crate::fault::{FaultInjector, FaultPoint, InjectedFault};

/// Identifies a clic-store backing file (version 1).
const FILE_MAGIC: [u8; 8] = *b"CLICPGS1";
/// Bytes of file header before slot 0.
const HEADER_LEN: u64 = 16;
/// Bytes of per-slot metadata before the page bytes.
const SLOT_META_LEN: usize = 16;
/// Slot meta flag: the slot holds a live page.
const FLAG_ALLOCATED: u32 = 1;
/// Directory stripes: page lookups hash-partition across this many maps.
const DIRECTORY_STRIPES: usize = 16;
/// Bitmap stripes used by [`DiskManager`]'s slot allocator.
const BITMAP_STRIPES: usize = 8;

/// A slot-granular allocation bitmap: one bit per slot, first-fit
/// allocation, growing as needed. Single-threaded; [`ShardedBitmap`] wraps
/// a set of these in stripe locks for concurrent allocation.
#[derive(Debug, Default)]
pub struct AllocationBitmap {
    words: Vec<u64>,
    /// Word index to start the next first-fit scan from (monotone until a
    /// clear rewinds it), so repeated allocation is amortized O(1).
    scan_hint: usize,
    allocated: usize,
}

impl AllocationBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        AllocationBitmap::default()
    }

    /// Returns the lowest free slot, marking it allocated (growing the
    /// bitmap if every existing slot is taken).
    pub fn allocate(&mut self) -> usize {
        for (offset, word) in self.words[self.scan_hint..].iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = word.trailing_ones() as usize;
                *word |= 1 << bit;
                self.scan_hint += offset;
                self.allocated += 1;
                return (self.scan_hint) * 64 + bit;
            }
        }
        self.scan_hint = self.words.len();
        self.words.push(1);
        self.allocated += 1;
        self.scan_hint * 64
    }

    /// Marks `slot` allocated (used when rebuilding from a file scan).
    pub fn set(&mut self, slot: usize) {
        let word = slot / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        if self.words[word] & (1 << (slot % 64)) == 0 {
            self.words[word] |= 1 << (slot % 64);
            self.allocated += 1;
        }
    }

    /// Marks `slot` free.
    pub fn clear(&mut self, slot: usize) {
        let word = slot / 64;
        if word < self.words.len() && self.words[word] & (1 << (slot % 64)) != 0 {
            self.words[word] &= !(1 << (slot % 64));
            self.allocated -= 1;
            self.scan_hint = self.scan_hint.min(word);
        }
    }

    /// Whether `slot` is allocated.
    pub fn is_set(&self, slot: usize) -> bool {
        self.words
            .get(slot / 64)
            .is_some_and(|word| word & (1 << (slot % 64)) != 0)
    }

    /// Number of allocated slots.
    pub fn allocated(&self) -> usize {
        self.allocated
    }
}

/// A sharded slot allocator: `stripes` independently locked
/// [`AllocationBitmap`]s interleaved across the global slot space.
///
/// Stripe `s` owns global slots `s, s + stripes, s + 2·stripes, …`; a
/// page's allocations always come from stripe `page_partition(page,
/// stripes)`, so concurrent writers of hash-distinct pages allocate without
/// contending on one lock. Within a stripe allocation is still first-fit
/// (lowest interleaved slot), so a single-threaded caller gets a
/// deterministic slot assignment.
#[derive(Debug)]
pub struct ShardedBitmap {
    stripes: Box<[Mutex<AllocationBitmap>]>,
}

impl ShardedBitmap {
    /// A bitmap sharded over `stripes` independently locked stripes.
    ///
    /// # Panics
    ///
    /// Panics if `stripes` is zero.
    pub fn new(stripes: usize) -> Self {
        assert!(stripes > 0, "at least one stripe is required");
        ShardedBitmap {
            stripes: (0..stripes)
                .map(|_| Mutex::new(AllocationBitmap::new()))
                .collect(),
        }
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Allocates the first free slot in `page`'s stripe and returns its
    /// global slot number.
    pub fn allocate_for(&self, page: PageId) -> usize {
        let n = self.stripes.len();
        let stripe = page_partition(page, n);
        let local = recover_lock(&self.stripes[stripe]).allocate();
        local * n + stripe
    }

    /// Marks global `slot` allocated (used when rebuilding from a scan).
    pub fn set(&self, slot: usize) {
        let n = self.stripes.len();
        recover_lock(&self.stripes[slot % n]).set(slot / n);
    }

    /// Marks global `slot` free.
    pub fn clear(&self, slot: usize) {
        let n = self.stripes.len();
        recover_lock(&self.stripes[slot % n]).clear(slot / n);
    }

    /// Whether global `slot` is allocated.
    pub fn is_set(&self, slot: usize) -> bool {
        let n = self.stripes.len();
        recover_lock(&self.stripes[slot % n]).is_set(slot / n)
    }

    /// Number of allocated slots across all stripes.
    pub fn allocated(&self) -> usize {
        self.stripes
            .iter()
            .map(|stripe| recover_lock(stripe).allocated())
            .sum()
    }
}

/// Reads and writes fixed-size page frames in a single backing file.
///
/// Internally synchronized (see the module docs): positioned I/O plus a
/// striped directory and a [`ShardedBitmap`] allocator mean concurrent
/// reads and writes of distinct pages proceed without sharing a lock.
/// Callers serialize operations on the *same* page (the buffer pool's
/// frame latches do this above).
#[derive(Debug)]
pub struct DiskManager {
    file: File,
    page_size: usize,
    directory: Box<[Mutex<FastHashMap<PageId, u32>>]>,
    bitmap: ShardedBitmap,
    fault: FaultInjector,
}

impl DiskManager {
    /// Opens (or creates) the backing file at `path` with the given page
    /// size, rebuilding the slot directory and allocation bitmap by scanning
    /// the slot headers.
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] if the file exists but its
    /// magic or page size disagree, or if two live slots claim the same
    /// page.
    pub fn open(path: &Path, page_size: usize) -> io::Result<DiskManager> {
        DiskManager::open_with(path, page_size, FaultInjector::disabled())
    }

    /// [`DiskManager::open`] with a [`FaultInjector`] armed at the
    /// [`FaultPoint::DiskRead`], [`FaultPoint::DiskWrite`], and
    /// [`FaultPoint::DataSync`] points. The open-time header scan is not
    /// fault-injected: it models recovery, which runs before the
    /// schedule starts.
    // invariant: the `try_into().unwrap()`s below convert constant-bound
    // subslices of fixed-size buffers into arrays — they cannot fail.
    #[cfg_attr(not(test), allow(clippy::unwrap_used))]
    pub fn open_with(
        path: &Path,
        page_size: usize,
        fault: FaultInjector,
    ) -> io::Result<DiskManager> {
        assert!(page_size > 0, "page size must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let file_len = file.metadata()?.len();
        if file_len == 0 {
            let mut header = [0u8; HEADER_LEN as usize];
            header[..8].copy_from_slice(&FILE_MAGIC);
            header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
            file.write_all_at(&header, 0)?;
        } else {
            let mut header = [0u8; HEADER_LEN as usize];
            file.read_exact_at(&mut header, 0)?;
            if header[..8] != FILE_MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a clic-store backing file (bad magic)",
                ));
            }
            let stored = u32::from_le_bytes(header[8..12].try_into().unwrap());
            if stored as usize != page_size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("backing file has page size {stored}, expected {page_size}"),
                ));
            }
        }
        let manager = DiskManager {
            file,
            page_size,
            directory: (0..DIRECTORY_STRIPES)
                .map(|_| Mutex::new(FastHashMap::default()))
                .collect(),
            bitmap: ShardedBitmap::new(BITMAP_STRIPES),
            fault,
        };
        let stride = manager.stride();
        let slots = file_len.saturating_sub(HEADER_LEN) / stride;
        let mut meta = [0u8; SLOT_META_LEN];
        for slot in 0..slots {
            manager
                .file
                .read_exact_at(&mut meta, HEADER_LEN + slot * stride)?;
            let flags = u32::from_le_bytes(meta[12..16].try_into().unwrap());
            if flags & FLAG_ALLOCATED == 0 {
                continue;
            }
            let page = PageId(u64::from_le_bytes(meta[..8].try_into().unwrap()));
            let mut stripe = recover_lock(manager.stripe_of(page));
            if stripe.insert(page, slot as u32).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("page {} is live in two slots", page.0),
                ));
            }
            drop(stripe);
            manager.bitmap.set(slot as usize);
        }
        Ok(manager)
    }

    fn stride(&self) -> u64 {
        (SLOT_META_LEN + self.page_size) as u64
    }

    fn slot_offset(&self, slot: u32) -> u64 {
        HEADER_LEN + u64::from(slot) * self.stride()
    }

    fn stripe_of(&self, page: PageId) -> &Mutex<FastHashMap<PageId, u32>> {
        &self.directory[page_partition(page, self.directory.len())]
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live pages in the file.
    pub fn allocated_pages(&self) -> usize {
        self.directory
            .iter()
            .map(|stripe| recover_lock(stripe).len())
            .sum()
    }

    /// Whether the file holds a live copy of `page`.
    pub fn contains(&self, page: PageId) -> bool {
        recover_lock(self.stripe_of(page)).contains_key(&page)
    }

    /// Every live page, sorted by id (a deterministic order regardless of
    /// stripe layout).
    pub fn pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self
            .directory
            .iter()
            .flat_map(|stripe| recover_lock(stripe).keys().copied().collect::<Vec<_>>())
            .collect();
        pages.sort_unstable();
        pages
    }

    fn checksum(page: PageId, data: &[u8]) -> u32 {
        let mut crc = Crc32::new();
        crc.update(&page.0.to_le_bytes());
        crc.update(data);
        crc.finish()
    }

    /// Reads `page` into `buf` (which must be exactly one page long).
    /// Returns `Ok(false)` if the file holds no copy of the page, and
    /// [`io::ErrorKind::InvalidData`] if the stored frame fails CRC
    /// verification (a torn write).
    pub fn read_page(&self, page: PageId, buf: &mut [u8]) -> io::Result<bool> {
        assert_eq!(buf.len(), self.page_size, "buffer must be one page");
        let slot = match recover_lock(self.stripe_of(page)).get(&page) {
            Some(&slot) => slot,
            None => return Ok(false),
        };
        let mut slot_buf = vec![0u8; SLOT_META_LEN + self.page_size];
        self.file
            .read_exact_at(&mut slot_buf, self.slot_offset(slot))?;
        match self.fault.decide(FaultPoint::DiskRead, slot_buf.len()) {
            InjectedFault::None => {}
            InjectedFault::Corrupt(at) => {
                // Flip one byte of what the "device" returned: the CRC
                // check below reports it as a torn frame, exactly like
                // real media corruption.
                slot_buf[at] ^= 0xff;
            }
            _ => return Err(FaultInjector::error(FaultPoint::DiskRead)),
        }
        // invariant: constant-bound subslices of a fixed-size meta prefix.
        #[allow(clippy::unwrap_used)]
        let stored_page = u64::from_le_bytes(slot_buf[..8].try_into().unwrap());
        #[allow(clippy::unwrap_used)]
        let stored_crc = u32::from_le_bytes(slot_buf[8..12].try_into().unwrap());
        let data = &slot_buf[SLOT_META_LEN..];
        if stored_page != page.0 || stored_crc != Self::checksum(page, data) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("torn frame: page {} failed CRC verification", page.0),
            ));
        }
        buf.copy_from_slice(data);
        Ok(true)
    }

    /// Writes `data` (exactly one page) as the live copy of `page`,
    /// allocating a slot from the page's bitmap stripe if it has none. Meta
    /// and page bytes go out as one contiguous positioned write, after the
    /// directory stripe lock is already released.
    pub fn write_page(&self, page: PageId, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len(), self.page_size, "data must be one page");
        let slot = {
            let mut stripe = recover_lock(self.stripe_of(page));
            match stripe.get(&page) {
                Some(&slot) => slot,
                None => {
                    let slot = self.bitmap.allocate_for(page) as u32;
                    stripe.insert(page, slot);
                    slot
                }
            }
        };
        let mut slot_buf = vec![0u8; SLOT_META_LEN + self.page_size];
        slot_buf[..8].copy_from_slice(&page.0.to_le_bytes());
        slot_buf[8..12].copy_from_slice(&Self::checksum(page, data).to_le_bytes());
        slot_buf[12..16].copy_from_slice(&FLAG_ALLOCATED.to_le_bytes());
        slot_buf[SLOT_META_LEN..].copy_from_slice(data);
        match self.fault.decide(FaultPoint::DiskWrite, slot_buf.len()) {
            InjectedFault::None => self.file.write_all_at(&slot_buf, self.slot_offset(slot))?,
            InjectedFault::Torn(n) => {
                // A torn frame write: the slot now holds a mix of old and
                // new bytes whose CRC cannot verify — the next read_page
                // reports it, and recovery replays the WAL copy over it.
                self.file
                    .write_all_at(&slot_buf[..n], self.slot_offset(slot))?;
                return Err(FaultInjector::error(FaultPoint::DiskWrite));
            }
            _ => return Err(FaultInjector::error(FaultPoint::DiskWrite)),
        }
        Ok(())
    }

    /// Drops the live copy of `page` (zeroing its slot meta) and returns its
    /// slot to the allocator. Returns `Ok(false)` if the page had no copy.
    ///
    /// The slot is returned to the bitmap only *after* the zeroed meta hits
    /// the file, so a concurrent allocation can never be clobbered by this
    /// free's write.
    pub fn free_page(&self, page: PageId) -> io::Result<bool> {
        let slot = match recover_lock(self.stripe_of(page)).remove(&page) {
            Some(slot) => slot,
            None => return Ok(false),
        };
        if let InjectedFault::Fail | InjectedFault::Torn(_) =
            self.fault.decide(FaultPoint::DiskWrite, SLOT_META_LEN)
        {
            // Re-publish the mapping: the zeroed meta never hit the file,
            // so the slot still holds the live page.
            recover_lock(self.stripe_of(page)).insert(page, slot);
            return Err(FaultInjector::error(FaultPoint::DiskWrite));
        }
        self.file
            .write_all_at(&[0u8; SLOT_META_LEN], self.slot_offset(slot))?;
        self.bitmap.clear(slot as usize);
        Ok(true)
    }

    /// Flushes file contents to the device (`fsync`-equivalent).
    pub fn sync(&self) -> io::Result<()> {
        if self.fault.decide(FaultPoint::DataSync, 0) != InjectedFault::None {
            return Err(FaultInjector::error(FaultPoint::DataSync));
        }
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("clic-disk-test-{}-{tag}.pages", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    /// Byte offset of the live slot holding `page`, found by scanning slot
    /// metas (slot assignment depends on the bitmap's stripe interleave).
    fn slot_offset_of(bytes: &[u8], page: u64, page_size: usize) -> usize {
        let stride = SLOT_META_LEN + page_size;
        let mut offset = HEADER_LEN as usize;
        while offset + stride <= bytes.len() {
            let meta = &bytes[offset..offset + SLOT_META_LEN];
            let id = u64::from_le_bytes(meta[..8].try_into().unwrap());
            let flags = u32::from_le_bytes(meta[12..16].try_into().unwrap());
            if flags & FLAG_ALLOCATED != 0 && id == page {
                return offset;
            }
            offset += stride;
        }
        panic!("page {page} has no live slot");
    }

    #[test]
    fn bitmap_first_fit_and_reuse() {
        let mut bitmap = AllocationBitmap::new();
        assert_eq!(bitmap.allocate(), 0);
        assert_eq!(bitmap.allocate(), 1);
        assert_eq!(bitmap.allocate(), 2);
        bitmap.clear(1);
        assert_eq!(bitmap.allocated(), 2);
        assert_eq!(bitmap.allocate(), 1, "freed slot is reused first-fit");
        for expected in 3..70 {
            assert_eq!(bitmap.allocate(), expected);
        }
        assert!(bitmap.is_set(64));
        assert!(!bitmap.is_set(1000));
        assert_eq!(bitmap.allocated(), 70);
    }

    #[test]
    fn sharded_bitmap_keeps_stripes_disjoint() {
        let bitmap = ShardedBitmap::new(4);
        let mut slots = Vec::new();
        for p in 0..64u64 {
            slots.push(bitmap.allocate_for(PageId(p)));
        }
        let mut unique = slots.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), slots.len(), "no slot is handed out twice");
        assert_eq!(bitmap.allocated(), 64);
        // Each slot lives in the stripe of the page that allocated it.
        for (i, &slot) in slots.iter().enumerate() {
            assert!(bitmap.is_set(slot));
            assert_eq!(slot % 4, page_partition(PageId(i as u64), 4));
        }
        let victim = slots[7];
        bitmap.clear(victim);
        assert!(!bitmap.is_set(victim));
        assert_eq!(bitmap.allocated(), 63);
        // set() rebuilds the same state a scan would.
        bitmap.set(victim);
        assert!(bitmap.is_set(victim));
        assert_eq!(bitmap.allocated(), 64);
    }

    #[test]
    fn write_read_roundtrip_and_rescan() {
        let path = temp_file("roundtrip");
        let page_size = 256;
        let pattern = |seed: u8| vec![seed; page_size];
        {
            let disk = DiskManager::open(&path, page_size).unwrap();
            // Sparse page ids land in dense slots.
            disk.write_page(PageId(7), &pattern(1)).unwrap();
            disk.write_page(PageId(100_000_007), &pattern(2)).unwrap();
            disk.write_page(PageId(7), &pattern(3)).unwrap(); // overwrite in place
            assert_eq!(disk.allocated_pages(), 2);
            let mut buf = vec![0u8; page_size];
            assert!(disk.read_page(PageId(7), &mut buf).unwrap());
            assert_eq!(buf, pattern(3));
            assert!(!disk.read_page(PageId(8), &mut buf).unwrap());
            assert!(disk.free_page(PageId(7)).unwrap());
            assert!(!disk.free_page(PageId(7)).unwrap());
            disk.write_page(PageId(42), &pattern(4)).unwrap();
            disk.sync().unwrap();
        }
        // Reopen: the directory and bitmap are rebuilt from the headers.
        let disk = DiskManager::open(&path, page_size).unwrap();
        assert_eq!(disk.allocated_pages(), 2);
        let mut buf = vec![0u8; page_size];
        assert!(disk.read_page(PageId(100_000_007), &mut buf).unwrap());
        assert_eq!(buf, pattern(2));
        assert!(disk.read_page(PageId(42), &mut buf).unwrap());
        assert_eq!(buf, pattern(4));
        assert!(!disk.contains(PageId(7)), "freed page stays freed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_writers_of_distinct_pages_round_trip() {
        let path = temp_file("concurrent");
        let page_size = 64;
        let disk = std::sync::Arc::new(DiskManager::open(&path, page_size).unwrap());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let disk = std::sync::Arc::clone(&disk);
                scope.spawn(move || {
                    for i in 0..32u64 {
                        let page = PageId(t * 1_000 + i);
                        let data = vec![(t * 32 + i) as u8; page_size];
                        disk.write_page(page, &data).unwrap();
                    }
                });
            }
        });
        assert_eq!(disk.allocated_pages(), 128);
        let mut buf = vec![0u8; page_size];
        for t in 0..4u64 {
            for i in 0..32u64 {
                let page = PageId(t * 1_000 + i);
                assert!(disk.read_page(page, &mut buf).unwrap());
                assert_eq!(buf, vec![(t * 32 + i) as u8; page_size], "page {page}");
            }
        }
        // A reopen rebuilds the same directory the writers built.
        drop(disk);
        let disk = DiskManager::open(&path, page_size).unwrap();
        assert_eq!(disk.allocated_pages(), 128);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_frames_fail_crc_verification() {
        let path = temp_file("torn");
        let page_size = 128;
        let disk = DiskManager::open(&path, page_size).unwrap();
        disk.write_page(PageId(1), &vec![9u8; page_size]).unwrap();
        drop(disk);
        // Corrupt one byte in the middle of the page's slot bytes.
        let mut bytes = std::fs::read(&path).unwrap();
        let victim = slot_offset_of(&bytes, 1, page_size) + SLOT_META_LEN + page_size / 2;
        bytes[victim] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let disk = DiskManager::open(&path, page_size).unwrap();
        let mut buf = vec![0u8; page_size];
        let err = disk.read_page(PageId(1), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mismatched_page_size_is_rejected() {
        let path = temp_file("pagesize");
        drop(DiskManager::open(&path, 256).unwrap());
        let err = DiskManager::open(&path, 512).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
