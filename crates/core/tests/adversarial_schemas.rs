//! Adversarial hint-schema tests for the generalization trees and the
//! top-k tracker.
//!
//! The paper assumes hint sets are opaque but *stable*; a misbehaving (or
//! simply upgraded) client can violate that mid-run by renaming hint
//! values, permuting which attribute carries the signal, or inflating the
//! schema with high-cardinality noise. None of that may panic, fragment
//! the learned grouping past its budget, or evict the genuinely hot hint
//! sets from the bounded tracker — CLIC must degrade, not fall over.

use cache_sim::{simulate, AccessKind, CachePolicy, ClientId, HintSetId, Trace, TraceBuilder};
use clic_core::{
    train_grouping, train_grouping_from_prefix, Clic, ClicConfig, HintStatsTracker, TopKTracker,
    TrackingMode,
};

/// First half: attribute 0 carries the hot/cold signal with values {0, 1}
/// and attribute 1 is round-robin noise. Second half, per the adversary:
///
/// * `rename` — the signal values become {2, 3}, never seen in training;
/// * `permute` — the signal moves to attribute 1, noise to attribute 0.
fn schema_shift_trace(rename: bool, permute: bool) -> Trace {
    let mut b = TraceBuilder::new().with_name("shift");
    let c = b.add_client("db", &[("a", 8), ("b", 8)]);
    let push_phase = |b: &mut TraceBuilder, phase: u64| {
        for i in 0..6_000u64 {
            let noise = (i % 4) as u32;
            let (hot, cold) = if phase == 0 {
                ([1, noise], [0, noise])
            } else if rename {
                ([3, noise], [2, noise])
            } else if permute {
                ([noise, 1], [noise, 0])
            } else {
                ([1, noise], [0, noise])
            };
            let hot_hint = b.intern_hints(c, &hot);
            let cold_hint = b.intern_hints(c, &cold);
            b.push(c, 500_000 + (i % 48), AccessKind::Write, None, hot_hint);
            b.push(c, 500_000 + (i % 48), AccessKind::Read, None, hot_hint);
            b.push(c, phase * 1_000_000 + i, AccessKind::Read, None, cold_hint);
        }
    };
    push_phase(&mut b, 0);
    push_phase(&mut b, 1);
    b.build()
}

#[test]
fn renamed_values_route_to_the_default_group_without_panic() {
    let trace = schema_shift_trace(true, false);
    // Train strictly on the first half, before the rename.
    let grouping = train_grouping_from_prefix(&trace, 0.5, 4);
    let tree = grouping.tree(ClientId(0)).expect("client trained");
    // Values 2 and 3 never occurred in training; they must still map to
    // some learned group (the default child), not panic or invent one.
    for renamed in [2u32, 3] {
        for noise in 0..4u32 {
            assert!(tree.group_of(&[renamed, noise]) < tree.groups());
        }
    }
    // Applying across the rename keeps the trace structurally intact and
    // within the group budget.
    let grouped = grouping.apply(&trace);
    assert_eq!(grouped.len(), trace.len());
    assert!(grouped.summary().distinct_hint_sets as u32 <= tree.groups().max(1));
}

#[test]
fn permuted_attributes_stay_within_the_learned_groups() {
    let trace = schema_shift_trace(false, true);
    let grouping = train_grouping_from_prefix(&trace, 0.5, 4);
    let tree = grouping.tree(ClientId(0)).expect("client trained");
    // After the permutation the signal sits in the attribute the tree
    // treats as noise; every permuted vector must still resolve.
    for a in 0..4u32 {
        for b in 0..2u32 {
            assert!(tree.group_of(&[a, b]) < tree.groups());
        }
    }
    // Training over BOTH halves (the analysis saw the permutation) still
    // respects the leaf budget even though the signal is split across two
    // attributes.
    let full = train_grouping_from_prefix(&trace, 1.0, 4);
    let full_tree = full.tree(ClientId(0)).expect("client trained");
    assert!(full_tree.groups() >= 1);
    assert!(full_tree.groups() <= 4);
}

#[test]
fn group_of_tolerates_wrong_arity_vectors() {
    let trace = schema_shift_trace(false, false);
    let grouping = train_grouping_from_prefix(&trace, 0.5, 4);
    let tree = grouping.tree(ClientId(0)).expect("client trained");
    // A client that dropped an attribute (short vector: missing values
    // read as 0) or bolted extra ones on (long vector: ignored) must
    // still be classified.
    assert!(tree.group_of(&[]) < tree.groups());
    assert!(tree.group_of(&[1]) < tree.groups());
    assert!(tree.group_of(&[1, 0, 7, 9, 100]) < tree.groups());
}

#[test]
fn inflated_schema_cannot_fragment_the_tree_past_its_budget() {
    // An adversarial client with a 64-value noise attribute alongside the
    // 2-value signal: 128 distinct hint sets, most of them rare.
    let mut b = TraceBuilder::new().with_name("inflate");
    let c = b.add_client("db", &[("useful", 2), ("noise", 64)]);
    for i in 0..30_000u64 {
        let noise = (i % 64) as u32;
        let hot = b.intern_hints(c, &[1, noise]);
        let cold = b.intern_hints(c, &[0, noise]);
        b.push(c, 1_000_000 + (i % 48), AccessKind::Write, None, hot);
        b.push(c, 1_000_000 + (i % 48), AccessKind::Read, None, hot);
        b.push(c, i, AccessKind::Read, None, cold);
    }
    let trace = b.build();
    assert!(trace.summary().distinct_hint_sets > 100);

    let grouping = train_grouping_from_prefix(&trace, 0.5, 4);
    let tree = grouping.tree(ClientId(0)).expect("client trained");
    // The budget holds despite 128 training samples, and the useful
    // attribute still separates hot from cold.
    assert!(tree.groups() <= 4);
    assert!(tree.groups() >= 2);
    assert_ne!(tree.group_of(&[1, 0]), tree.group_of(&[0, 0]));
    // The grouped trace collapses the hint-set explosion.
    let grouped = grouping.apply(&trace);
    assert!(grouped.summary().distinct_hint_sets <= 4);
}

#[test]
fn empty_reports_train_an_empty_grouping() {
    let trace = schema_shift_trace(false, false);
    let grouping = train_grouping(&trace.catalog, &[], 4);
    assert_eq!(grouping.groups_for(ClientId(0)), 0);
    // Applying a grouping that learned nothing degrades to one group per
    // client rather than panicking.
    let grouped = grouping.apply(&trace);
    assert_eq!(grouped.len(), trace.len());
    assert_eq!(grouped.summary().distinct_hint_sets, 1);
}

#[test]
fn topk_tracker_survives_hint_set_churn_and_keeps_the_hot_set() {
    let mut t = TopKTracker::new(4);
    // One stable dominant hint set against a rotating flood of fresh ids
    // (the "inflated mid-run" schema: every flood id occurs once).
    for i in 0..50_000u32 {
        t.record_request(HintSetId(0));
        t.record_read_rereference(HintSetId(0), 10);
        t.record_request(HintSetId(1 + i));
        assert!(t.tracked_len() <= 4, "bounded at every step");
    }
    let window = t.end_window();
    assert!(window.len() <= 4);
    let hot = window
        .iter()
        .find(|(h, _)| *h == HintSetId(0))
        .expect("the dominant hint set must survive the churn");
    // Guaranteed count: each flood id can steal at most one counter's
    // worth of error; the dominant set's floor stays within that bound.
    assert!(hot.1.requests > 25_000, "got {}", hot.1.requests);
    assert_eq!(hot.1.read_rereferences, 50_000);
}

#[test]
fn topk_tracker_adapts_when_the_dominant_hint_is_renamed() {
    let mut t = TopKTracker::new(2);
    // Phase 1: hint 7 dominates. Phase 2: the client renames it to 8 and
    // never uses 7 again, while churn ids keep flooding.
    for i in 0..10_000u32 {
        t.record_request(HintSetId(7));
        t.record_request(HintSetId(100 + i));
    }
    for i in 0..30_000u32 {
        t.record_request(HintSetId(8));
        t.record_request(HintSetId(200_000 + i));
    }
    let window = t.end_window();
    let new_hot = window
        .iter()
        .find(|(h, _)| *h == HintSetId(8))
        .expect("the renamed dominant set must be monitored by window end");
    assert!(new_hot.1.requests > 10_000, "got {}", new_hot.1.requests);
}

#[test]
fn clic_with_topk_tracking_completes_under_schema_churn() {
    // End-to-end: the full policy, tiny k, on a trace whose schema is
    // renamed mid-run. The simulation must complete with sane statistics
    // and the bounded tracker must actually stay bounded.
    for (rename, permute) in [(true, false), (false, true)] {
        let trace = schema_shift_trace(rename, permute);
        let mut clic = Clic::new(
            96,
            ClicConfig::default()
                .with_window(4_000)
                .with_tracking(TrackingMode::TopK(4)),
        );
        let result = simulate(&mut clic, &trace);
        assert_eq!(result.stats.requests(), trace.len() as u64);
        assert!(clic.len() <= 96);
        let ratio = result.read_hit_ratio();
        assert!((0.0..=1.0).contains(&ratio), "ratio {ratio}");
        // The hot pages are re-read constantly; even with the adversarial
        // schema the policy must retain some of them.
        assert!(ratio > 0.0, "the policy collapsed under schema churn");
    }
}
