//! Property-based tests for the CLIC policy and its supporting structures.

use proptest::collection::vec;
use proptest::prelude::*;

use cache_sim::{
    simulate, AccessKind, CachePolicy, ClientId, HintSetId, PageId, Trace, TraceBuilder, WriteHint,
};
use clic_core::{
    analyze_trace, train_grouping_from_prefix, Clic, ClicConfig, OutQueue, PageRecord,
    ReferenceClic, TrackingMode,
};

#[derive(Debug, Clone, Copy)]
struct GenReq {
    page: u64,
    write: bool,
    hint: u8,
}

fn gen_request() -> impl Strategy<Value = GenReq> {
    (0u64..80, any::<bool>(), 0u8..6).prop_map(|(page, write, hint)| GenReq { page, write, hint })
}

/// A fixed trace family for the grouping properties: the `useful` attribute
/// (2 values) perfectly predicts re-reference behaviour — `useful = 1` pages
/// are written then immediately re-read, `useful = 0` pages are one-shot
/// reads — while the `noise` attribute fans each behaviour out over
/// `noise_values` hint sets that differ only in name.
fn useful_plus_noise_trace(noise_values: u32, rounds: u64) -> Trace {
    let mut b = TraceBuilder::new().with_name("grouping");
    let c = b.add_client("db", &[("useful", 2), ("noise", noise_values)]);
    let hot: Vec<HintSetId> = (0..noise_values)
        .map(|n| b.intern_hints(c, &[1, n]))
        .collect();
    let cold: Vec<HintSetId> = (0..noise_values)
        .map(|n| b.intern_hints(c, &[0, n]))
        .collect();
    for i in 0..rounds {
        let noise = (i % u64::from(noise_values)) as usize;
        b.push(c, 1_000_000 + (i % 64), AccessKind::Write, None, hot[noise]);
        b.push(c, 1_000_000 + (i % 64), AccessKind::Read, None, hot[noise]);
        b.push(c, i, AccessKind::Read, None, cold[noise]);
    }
    b.build()
}

fn trace_from(reqs: &[GenReq]) -> Trace {
    let mut b = TraceBuilder::new().with_name("prop");
    let c = b.add_client("prop", &[("h", 6)]);
    let hints: Vec<HintSetId> = (0..6).map(|v| b.intern_hints(c, &[v])).collect();
    for r in reqs {
        let kind = if r.write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let wh = if r.write {
            Some(WriteHint::Replacement)
        } else {
            None
        };
        b.push(c, r.page, kind, wh, hints[r.hint as usize]);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CLIC never exceeds its effective capacity, reports hits consistently
    /// with membership, and bounds its outqueue, for arbitrary request
    /// streams, window sizes, and tracking modes.
    #[test]
    fn clic_structural_invariants(
        reqs in vec(gen_request(), 1..500),
        capacity in 2usize..32,
        window in 10u64..200,
        topk in prop::option::of(1usize..8),
        outqueue_factor in 0u8..6,
    ) {
        let trace = trace_from(&reqs);
        let tracking = match topk {
            Some(k) => TrackingMode::TopK(k),
            None => TrackingMode::Full,
        };
        let config = ClicConfig::default()
            .with_window(window)
            .with_tracking(tracking)
            .with_outqueue_factor(f64::from(outqueue_factor))
            .with_metadata_charging(false);
        let outqueue_cap = config.outqueue_entries(capacity);
        let mut clic = Clic::new(capacity, config);
        for (seq, req) in trace.iter() {
            let cached_before = clic.contains(req.page);
            let outcome = clic.access(req, seq);
            prop_assert_eq!(outcome.hit, cached_before);
            prop_assert!(clic.len() <= capacity);
            prop_assert!(clic.outqueue_len() <= outqueue_cap);
            if !outcome.hit {
                prop_assert_eq!(clic.contains(req.page), !outcome.bypassed);
            }
            // The cache composition always sums to the cache occupancy.
            let composition: usize = clic.cache_composition().iter().map(|(_, n)| n).sum();
            prop_assert_eq!(composition, clic.len());
        }
    }

    /// Differential anchor for the slab/intrusive-list refactor: the
    /// production [`Clic`] (slab-backed page table) and the retained naive
    /// [`ReferenceClic`] (hash maps + ordered sets + `BTreeSet` victim
    /// index) must produce *identical* hit/miss/eviction/bypass sequences —
    /// and identical cache state and learned priorities — on arbitrary
    /// hinted traces, across window sizes, tracking modes, and outqueue
    /// bounds.
    #[test]
    fn slab_clic_matches_reference_implementation(
        reqs in vec(gen_request(), 1..600),
        capacity in 2usize..32,
        window in 10u64..200,
        topk in prop::option::of(1usize..8),
        outqueue_factor in 0u8..6,
    ) {
        let trace = trace_from(&reqs);
        let tracking = match topk {
            Some(k) => TrackingMode::TopK(k),
            None => TrackingMode::Full,
        };
        let config = ClicConfig::default()
            .with_window(window)
            .with_tracking(tracking)
            .with_outqueue_factor(f64::from(outqueue_factor))
            .with_metadata_charging(false);
        let mut slab = Clic::new(capacity, config);
        let mut reference = ReferenceClic::new(capacity, config);
        for (seq, req) in trace.iter() {
            let got = slab.access(req, seq);
            let expected = reference.access(req, seq);
            prop_assert_eq!(got, expected, "outcome diverged at seq {}", seq);
            prop_assert_eq!(slab.len(), reference.len(), "occupancy diverged at seq {}", seq);
            prop_assert_eq!(
                slab.outqueue_snapshot(),
                reference.outqueue_snapshot(),
                "outqueue diverged at seq {}",
                seq
            );
            prop_assert_eq!(slab.contains(req.page), reference.contains(req.page));
        }
        // Same learned priorities at the end of the run.
        let mut got = slab.export_priorities();
        let mut expected = reference.export_priorities();
        got.sort_by_key(|(h, _)| h.0);
        expected.sort_by_key(|(h, _)| h.0);
        prop_assert_eq!(got, expected);
        // And the chunked batch driver — which runs Clic's prefetch-batched
        // `access_batch` fast path — reproduces the same statistics on fresh
        // instances of both implementations.
        let batched = simulate(&mut Clic::new(capacity, config), &trace);
        let sequential = simulate(&mut ReferenceClic::new(capacity, config), &trace);
        prop_assert_eq!(batched.stats, sequential.stats);
        prop_assert_eq!(batched.per_client, sequential.per_client);
        // Driving the prefetch-batched path directly with ragged batch sizes
        // must match the reference's per-request outcomes one for one.
        let mut slab_batched = Clic::new(capacity, config);
        let mut reference_again = ReferenceClic::new(capacity, config);
        let mut got_outcomes = Vec::new();
        let mut first_seq = 0u64;
        for chunk in trace.requests.chunks(37) {
            slab_batched.access_batch(chunk, first_seq, &mut got_outcomes);
            first_seq += chunk.len() as u64;
        }
        for (seq, req) in trace.iter() {
            let expected = reference_again.access(req, seq);
            prop_assert_eq!(got_outcomes[seq as usize], expected,
                "batched outcome diverged at seq {}", seq);
        }
    }

    /// The driver accounts for every request when running CLIC, and the
    /// number of completed windows matches the trace length and window size.
    #[test]
    fn clic_window_accounting(
        reqs in vec(gen_request(), 1..400),
        window in 10u64..100,
    ) {
        let trace = trace_from(&reqs);
        let mut clic = Clic::new(
            16,
            ClicConfig::default().with_window(window).with_metadata_charging(false),
        );
        let result = simulate(&mut clic, &trace);
        prop_assert_eq!(result.stats.requests(), trace.len() as u64);
        prop_assert_eq!(clic.windows_completed(), trace.len() as u64 / window);
    }

    /// Offline analysis invariants: frequencies sum to one, `Nr <= N`, and
    /// priorities are finite and non-negative for arbitrary traces.
    #[test]
    fn offline_analysis_invariants(reqs in vec(gen_request(), 1..500)) {
        let trace = trace_from(&reqs);
        let reports = analyze_trace(&trace);
        let total_freq: f64 = reports.iter().map(|r| r.frequency).sum();
        prop_assert!((total_freq - 1.0).abs() < 1e-9);
        let total_requests: u64 = reports.iter().map(|r| r.requests).sum();
        prop_assert_eq!(total_requests, trace.len() as u64);
        for r in &reports {
            prop_assert!(r.read_rereferences <= r.requests);
            prop_assert!(r.priority.is_finite());
            prop_assert!(r.priority >= 0.0);
            prop_assert!(r.read_hit_rate <= 1.0);
            if r.read_rereferences == 0 {
                prop_assert_eq!(r.priority, 0.0);
            }
        }
    }

    /// The outqueue is a bounded map: it never exceeds its capacity, always
    /// remembers the most recently inserted entries, and lookups agree with a
    /// naive model.
    #[test]
    fn outqueue_matches_model(
        ops in vec((0u8..3, 0u64..30, 0u64..1000), 1..300),
        capacity in 1usize..16,
    ) {
        let mut queue = OutQueue::new(capacity);
        let mut model: Vec<(u64, u64)> = Vec::new(); // (page, seq) insertion order
        for (op, page, seq) in ops {
            match op {
                0 => {
                    queue.insert(PageId(page), PageRecord { seq, hint: HintSetId(0) });
                    if let Some(pos) = model.iter().position(|(p, _)| *p == page) {
                        model.remove(pos);
                    } else if model.len() >= capacity {
                        model.remove(0);
                    }
                    model.push((page, seq));
                }
                1 => {
                    let removed = queue.remove(PageId(page));
                    let model_pos = model.iter().position(|(p, _)| *p == page);
                    prop_assert_eq!(removed.is_some(), model_pos.is_some());
                    if let Some(pos) = model_pos {
                        let (_, expected_seq) = model.remove(pos);
                        prop_assert_eq!(removed.unwrap().seq, expected_seq);
                    }
                }
                _ => {
                    let found = queue.get(PageId(page));
                    let expected = model.iter().find(|(p, _)| *p == page).map(|(_, s)| *s);
                    prop_assert_eq!(found.map(|r| r.seq), expected);
                }
            }
            prop_assert!(queue.len() <= capacity);
            prop_assert_eq!(queue.len(), model.len());
        }
    }

    /// Hint-set grouping never *inverts* the priority order learned without
    /// grouping: whenever hint set `a` clearly outranks hint set `b` on the
    /// ungrouped trace (here: hot write-then-read hint sets vs one-shot cold
    /// ones), the measured priorities of their groups must preserve that
    /// order — for any noise fan-out, trace length, group budget, and
    /// training fraction. Collapsing both into one group is allowed (equal
    /// priorities); ranking `b`'s group above `a`'s is not.
    #[test]
    fn grouping_never_inverts_ungrouped_priority_order(
        noise_values in 1u32..8,
        rounds in 300u64..1200,
        max_groups in 2u32..12,
        training_pct in 25u8..=100,
    ) {
        let trace = useful_plus_noise_trace(noise_values, rounds);
        let grouping =
            train_grouping_from_prefix(&trace, f64::from(training_pct) / 100.0, max_groups);
        let tree = grouping.tree(ClientId(0)).expect("client was trained");
        prop_assert!(tree.groups() >= 1);
        prop_assert!(tree.groups() <= max_groups);

        let ungrouped = analyze_trace(&trace);
        let grouped_trace = grouping.apply(&trace);
        prop_assert_eq!(grouped_trace.len(), trace.len());
        let grouped = analyze_trace(&grouped_trace);
        // Measured priority of a group in the rewritten trace (groups that
        // never occur would report nothing; every occurring hint set does).
        let group_priority = |group: u32| {
            grouped
                .iter()
                .find(|r| grouped_trace.catalog.resolve(r.hint).values[0].0 == group)
                .map(|r| r.priority)
                .unwrap_or(0.0)
        };
        let group_of = |report: &clic_core::HintSetReport| {
            let values: Vec<u32> = trace
                .catalog
                .resolve(report.hint)
                .values
                .iter()
                .map(|v| v.0)
                .collect();
            tree.group_of(&values)
        };
        for a in &ungrouped {
            for b in &ungrouped {
                // Only clear-cut ungrouped gaps must survive grouping;
                // near-ties (e.g. two hot hint sets differing by measurement
                // noise) may legitimately land either way.
                if a.priority > 4.0 * b.priority + 1e-12 {
                    let pa = group_priority(group_of(a));
                    let pb = group_priority(group_of(b));
                    prop_assert!(
                        pa >= pb - 1e-12,
                        "inversion: {} (pr {:.6} -> group pr {:.6}) vs {} (pr {:.6} -> group pr {:.6})",
                        a.label, a.priority, pa, b.label, b.priority, pb
                    );
                }
            }
        }
    }

    /// Top-k tracking with k well above the number of distinct hint sets
    /// closely matches full tracking. (It is not bit-identical: as the paper
    /// notes in Section 5, `Nr(H)` is only accumulated while `H` is being
    /// tracked, and the Space-Saving state restarts at every window boundary,
    /// so re-references that land before the hint set's first request of a
    /// window are missed.)
    #[test]
    fn topk_closely_matches_full_when_k_covers_all_hint_sets(
        reqs in vec(gen_request(), 50..400),
        capacity in 4usize..24,
    ) {
        let trace = trace_from(&reqs);
        let window = 50u64;
        let full = {
            let mut c = Clic::new(capacity, ClicConfig::default()
                .with_window(window)
                .with_metadata_charging(false));
            simulate(&mut c, &trace).read_hit_ratio()
        };
        let topk = {
            let mut c = Clic::new(capacity, ClicConfig::default()
                .with_window(window)
                .with_tracking(TrackingMode::TopK(16))
                .with_metadata_charging(false));
            simulate(&mut c, &trace).read_hit_ratio()
        };
        prop_assert!((full - topk).abs() < 0.1,
            "full {} vs top-k {} should be close when k >= #hint sets", full, topk);
    }
}
