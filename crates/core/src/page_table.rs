//! The slab-backed page table: CLIC's per-page bookkeeping in one structure.
//!
//! The policy needs, per request, (1) the most recent metadata for the
//! requested page whether it is cached or merely remembered in the outqueue,
//! (2) recency-ordered lists of cached pages grouped by hint set, and (3) the
//! lowest-priority hint set currently holding cached pages. The original
//! implementation spread this over four containers — a `HashMap` of cached
//! pages, a `HashMap` of per-hint ordered lists (each with its *own* internal
//! hash index), a separate outqueue map, and a `BTreeSet` victim index —
//! costing several hashed lookups per request. [`PageTable`] collapses all of
//! it into:
//!
//! * **one slab** (`slots`): a contiguous arena of [`PageRecord`] slots shared
//!   by cached *and* outqueue pages, with freed slots recycled through an
//!   intrusive free list;
//! * **one open-addressed index** (`buckets`): `PageId → slot`, Fibonacci
//!   hashing + linear probing + backward-shift deletion, sized so that a page
//!   lookup is one multiply and a short probe — the only per-page hashed
//!   lookup on the hot path;
//! * **intrusive per-hint lists**: cached slots are threaded into one doubly
//!   linked list per hint set through their `prev`/`next` fields (front =
//!   oldest sequence number), so "move to back", "remove", and "oldest page"
//!   are pointer swaps with no auxiliary index;
//! * **an intrusive outqueue FIFO**: uncached-but-remembered slots are
//!   threaded into a single bounded insertion-ordered list through the same
//!   link fields;
//! * **a min-priority victim index**: each occupied hint list caches its
//!   priority key, and the table memoizes the minimum key plus the list
//!   indices attaining it, maintained incrementally exactly as the retired
//!   `BTreeSet` + memoized-minimum pair did.
//!
//! # Invariants
//!
//! The structure maintains, between any two public calls:
//!
//! 1. Every live slot is reachable from the bucket index under its page id,
//!    and belongs to exactly one intrusive list: the hint list named by its
//!    `list` field (cached) or the outqueue FIFO (`list == OUTQUEUE`).
//! 2. Each hint list links its slots in ascending insertion order; because
//!    the policy only ever appends with the current (monotone) sequence
//!    number, the front of a list is the hint set's oldest cached page.
//! 3. The outqueue FIFO holds at most `outqueue_capacity` slots ordered by
//!    insertion; refreshing an existing entry moves it to the young end.
//! 4. A hint list's cached `key` equals the priority key passed at the moment
//!    the list last became occupied or at the last [`PageTable::refresh_keys`]
//!    call — the policy refreshes keys whenever priorities change, so stored
//!    keys always match the live priority table.
//! 5. `min_key` is the minimum `key` over occupied hint lists and `min_lists`
//!    are exactly the occupied lists attaining it, ordered by ascending
//!    [`HintSetId`] after a rebuild and by insertion order between rebuilds —
//!    mirroring the retired ordered-index semantics bit for bit (the order
//!    only matters for tie-breaks on equal sequence numbers, which cannot
//!    occur under a monotone sequencer).
//!
//! [`PageTable::validate`] checks all of the above and is exercised after
//! every request by the differential property tests.

use cache_sim::hash::FastHashMap;
use cache_sim::{HintSetId, PageId};

/// Metadata remembered for a page: the sequence number and hint set of its
/// most recent request. This is the one canonical record type shared by the
/// cached and outqueue halves of the slab (and re-exported by
/// [`crate::outqueue`] for the stand-alone [`crate::OutQueue`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRecord {
    /// Sequence number of the most recent request for the page.
    pub seq: u64,
    /// Hint set attached to that request.
    pub hint: HintSetId,
}

/// Issues a best-effort read prefetch for the cache line holding `ptr`
/// (locality hint: all cache levels). A no-op on architectures without a
/// stable prefetch intrinsic — prefetching is only ever a hint, so behaviour
/// is identical either way.
#[inline(always)]
fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` has no memory effects observable by safe code;
    // it is a hint and is defined for any address, valid or not.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(ptr.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

/// Sentinel for "no slot" in links, buckets, and free list.
const NIL: u32 = u32::MAX;
/// `Slot::list` value marking membership in the outqueue FIFO.
const OUTQUEUE: u32 = u32::MAX;
/// 64-bit golden-ratio constant for Fibonacci bucket hashing.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
/// Largest bucket array allocated eagerly; bigger tables grow on demand.
const MAX_EAGER_BUCKETS: usize = 1 << 21;

/// One slab entry: a page's record plus its intrusive list links.
#[derive(Debug, Clone, Copy)]
struct Slot {
    page: PageId,
    seq: u64,
    hint: HintSetId,
    /// Dense index of the hint list this slot is threaded into, or
    /// [`OUTQUEUE`] when the slot sits in the outqueue FIFO.
    list: u32,
    prev: u32,
    next: u32,
}

/// Head/tail/length of one hint set's intrusive list, plus its cached
/// priority key (valid while the list is occupied; see module invariant 4).
#[derive(Debug, Clone, Copy)]
struct HintList {
    hint: HintSetId,
    head: u32,
    tail: u32,
    len: u32,
    key: u64,
}

/// A stable handle to a slot, returned by [`PageTable::find`]. Valid only
/// until the next mutating call on the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRef(u32);

/// The eviction candidate reported by [`PageTable::find_victim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Victim {
    /// The minimum priority over occupied hint lists.
    pub priority: f64,
    /// Handle to the victim's slot (valid until the next mutating call);
    /// feed it to [`PageTable::evict_slot_to_outqueue`].
    pub slot: SlotRef,
    /// The victim page.
    pub page: PageId,
    /// The hint set the victim currently belongs to.
    pub hint: HintSetId,
}

/// The slab-backed page table described in the module documentation.
#[derive(Debug, Clone)]
pub struct PageTable {
    slots: Vec<Slot>,
    free_head: u32,
    /// Open-addressed index: bucket → slot, [`NIL`] when empty.
    buckets: Vec<u32>,
    /// `64 - log2(buckets.len())`: Fibonacci hashing keeps the high bits.
    bucket_shift: u32,
    /// Live slots (cached + outqueue).
    entries: usize,
    cached_len: usize,
    /// Hint set → dense index into `hint_lists`; entries are never removed.
    hint_index: FastHashMap<HintSetId, u32>,
    hint_lists: Vec<HintList>,
    outq_head: u32,
    outq_tail: u32,
    outq_len: usize,
    outq_capacity: usize,
    /// Minimum priority key over occupied hint lists (`None` when no page is
    /// cached), with the dense indices of the lists attaining it.
    min_key: Option<u64>,
    min_lists: Vec<u32>,
}

impl PageTable {
    /// Creates a table for a cache of `cache_capacity` pages remembering at
    /// most `outqueue_capacity` additional uncached pages.
    pub fn new(cache_capacity: usize, outqueue_capacity: usize) -> Self {
        let max_entries = cache_capacity.saturating_add(outqueue_capacity);
        let buckets = (max_entries.saturating_mul(2))
            .next_power_of_two()
            .clamp(16, MAX_EAGER_BUCKETS);
        PageTable {
            slots: Vec::with_capacity(max_entries.min(1 << 20)),
            free_head: NIL,
            buckets: vec![NIL; buckets],
            bucket_shift: 64 - buckets.trailing_zeros(),
            entries: 0,
            cached_len: 0,
            hint_index: FastHashMap::default(),
            hint_lists: Vec::new(),
            outq_head: NIL,
            outq_tail: NIL,
            outq_len: 0,
            outq_capacity: outqueue_capacity,
            min_key: None,
            min_lists: Vec::new(),
        }
    }

    /// Number of cached pages.
    #[inline]
    pub fn cached_len(&self) -> usize {
        self.cached_len
    }

    /// Number of pages remembered in the outqueue.
    #[inline]
    pub fn outqueue_len(&self) -> usize {
        self.outq_len
    }

    /// Maximum number of outqueue entries.
    #[inline]
    pub fn outqueue_capacity(&self) -> usize {
        self.outq_capacity
    }

    /// Returns `true` if `page` is currently cached (outqueue membership does
    /// not count).
    #[inline]
    pub fn contains(&self, page: PageId) -> bool {
        matches!(self.find(page), Some((_, _, true)))
    }

    /// Looks up `page`, returning its slot handle, record, and whether it is
    /// cached (`true`) or merely remembered in the outqueue (`false`).
    ///
    /// This is the single hashed lookup of the request hot path; the handle
    /// stays valid until the next mutating call.
    #[inline]
    pub fn find(&self, page: PageId) -> Option<(SlotRef, PageRecord, bool)> {
        let mask = self.buckets.len() - 1;
        let mut bucket = self.home_bucket(page);
        loop {
            let slot_idx = self.buckets[bucket];
            if slot_idx == NIL {
                return None;
            }
            let slot = &self.slots[slot_idx as usize];
            if slot.page == page {
                return Some((
                    SlotRef(slot_idx),
                    PageRecord {
                        seq: slot.seq,
                        hint: slot.hint,
                    },
                    slot.list != OUTQUEUE,
                ));
            }
            bucket = (bucket + 1) & mask;
        }
    }

    /// Largest group size accepted by [`PageTable::prefetch_group`] in one
    /// internal pass (callers may pass longer slices; they are processed in
    /// sub-groups of this size).
    pub const MAX_PREFETCH_GROUP: usize = 32;

    /// Warms the caches for an upcoming burst of [`PageTable::find`] calls on
    /// `pages` using a two-pass group structure: pass one precomputes every
    /// page's Fibonacci home bucket and software-prefetches the index
    /// buckets; pass two — by which time the bucket words are arriving —
    /// reads each home bucket and prefetches the slab slot it points at.
    /// The actual lookups then run against warm lines instead of paying a
    /// dependent bucket-then-slot miss chain per request.
    ///
    /// Purely a performance hint: no observable state changes, and the
    /// subsequent `find` calls behave identically whether or not (and on
    /// whatever architecture) this ran. Mutations between the prefetch and
    /// the lookup (admissions, evictions within the same batch) at worst
    /// waste the hint.
    pub fn prefetch_group(&self, pages: &[PageId]) {
        let mut homes = [0usize; Self::MAX_PREFETCH_GROUP];
        for group in pages.chunks(Self::MAX_PREFETCH_GROUP) {
            for (home, &page) in homes.iter_mut().zip(group) {
                *home = self.home_bucket(page);
                prefetch_read(&self.buckets[*home]);
            }
            for &home in homes.iter().take(group.len()) {
                let slot = self.buckets[home];
                if slot != NIL {
                    prefetch_read(&self.slots[slot as usize]);
                }
            }
        }
    }

    /// Refreshes a cached page on a hit: updates its record to `(seq, hint)`
    /// and moves it to the young end of `hint`'s list (switching lists if the
    /// hint set changed; `key` supplies the priority key of `hint` and is
    /// evaluated only if its list transitions from empty to occupied).
    ///
    /// `slot` must be a handle to a *cached* page returned by
    /// [`PageTable::find`] with no intervening mutation.
    pub fn record_hit(
        &mut self,
        slot: SlotRef,
        seq: u64,
        hint: HintSetId,
        key: impl FnOnce() -> u64,
    ) {
        let idx = slot.0;
        let old_list = self.slots[idx as usize].list;
        debug_assert_ne!(old_list, OUTQUEUE, "record_hit on an uncached slot");
        let slot_ref = &mut self.slots[idx as usize];
        slot_ref.seq = seq;
        if slot_ref.hint == hint {
            // Same hint set: move to the back of its list.
            self.hint_unlink(old_list, idx);
            self.hint_link_back(old_list, idx);
        } else {
            slot_ref.hint = hint;
            self.hint_unlink(old_list, idx);
            self.note_if_emptied(old_list);
            let new_list = self.list_of(hint);
            self.slots[idx as usize].list = new_list;
            let was_empty = self.hint_lists[new_list as usize].len == 0;
            self.hint_link_back(new_list, idx);
            if was_empty {
                self.note_occupied(new_list, key());
            }
        }
    }

    /// Admits `page` into the cache with `record`, at the young end of its
    /// hint set's list. If the page sits in the outqueue its slot is re-used
    /// (and leaves the FIFO); otherwise a slot is allocated. `key` supplies
    /// the priority key of `record.hint`, evaluated only if that hint's list
    /// transitions from empty to occupied.
    ///
    /// The page must not already be cached.
    pub fn admit(&mut self, page: PageId, record: PageRecord, key: impl FnOnce() -> u64) {
        let found = self.find(page).map(|(slot, _, cached)| {
            debug_assert!(!cached, "admit of an already cached page");
            slot
        });
        self.admit_resolved(found, page, record, key);
    }

    /// Like [`PageTable::admit`], but takes the result of a
    /// [`PageTable::find`]`(page)` performed by the caller *with no mutating
    /// call in between*, skipping the second probe of the hot miss path.
    pub fn admit_resolved(
        &mut self,
        found: Option<SlotRef>,
        page: PageId,
        record: PageRecord,
        key: impl FnOnce() -> u64,
    ) {
        let idx = match found {
            Some(slot) => {
                debug_assert_eq!(
                    self.slots[slot.0 as usize].page, page,
                    "stale slot handle passed to admit_resolved"
                );
                debug_assert_eq!(self.slots[slot.0 as usize].list, OUTQUEUE);
                self.outq_unlink(slot.0);
                slot.0
            }
            None => self.alloc(page),
        };
        let list = self.list_of(record.hint);
        {
            let slot = &mut self.slots[idx as usize];
            slot.seq = record.seq;
            slot.hint = record.hint;
            slot.list = list;
        }
        let was_empty = self.hint_lists[list as usize].len == 0;
        self.hint_link_back(list, idx);
        self.cached_len += 1;
        if was_empty {
            self.note_occupied(list, key());
        }
    }

    /// Evicts the cached `page`, remembering its record in the outqueue (the
    /// least recently inserted outqueue entry is dropped first if the FIFO is
    /// full; with a zero-capacity outqueue the page is forgotten entirely).
    pub fn evict_to_outqueue(&mut self, page: PageId) {
        let Some((slot, _, cached)) = self.find(page) else {
            return;
        };
        if !cached {
            return;
        }
        self.evict_slot_to_outqueue(slot);
    }

    /// Like [`PageTable::evict_to_outqueue`], but takes the slot handle the
    /// caller already holds (e.g. from [`PageTable::find_victim`], with no
    /// mutating call in between), skipping the probe. The slot must be
    /// cached.
    pub fn evict_slot_to_outqueue(&mut self, slot: SlotRef) {
        let idx = slot.0;
        let list = self.slots[idx as usize].list;
        debug_assert_ne!(list, OUTQUEUE, "evicting an uncached slot");
        self.hint_unlink(list, idx);
        self.cached_len -= 1;
        self.note_if_emptied(list);
        if self.outq_capacity == 0 {
            self.release(idx);
            return;
        }
        if self.outq_len >= self.outq_capacity {
            self.pop_outqueue_front();
        }
        self.slots[idx as usize].list = OUTQUEUE;
        self.outq_link_back(idx);
    }

    /// Forgets `page` entirely: a cached page leaves its hint list (updating
    /// the victim memo), an outqueue page leaves the FIFO, and the slot is
    /// freed in either case. Unlike [`PageTable::evict_to_outqueue`] the page
    /// is *not* remembered — this is the invalidation path (deletes), not an
    /// eviction, so no ghost entry survives to influence future admissions.
    ///
    /// Returns whether the page was cached (`Some(true)`), merely remembered
    /// in the outqueue (`Some(false)`), or unknown (`None`).
    pub fn remove(&mut self, page: PageId) -> Option<bool> {
        let (slot, _, cached) = self.find(page)?;
        let idx = slot.0;
        if cached {
            let list = self.slots[idx as usize].list;
            self.hint_unlink(list, idx);
            self.cached_len -= 1;
            self.note_if_emptied(list);
        } else {
            self.outq_unlink(idx);
        }
        self.release(idx);
        Some(cached)
    }

    /// Remembers `record` for the uncached `page` in the outqueue (the bypass
    /// path). Refreshing an existing entry updates its record and moves it to
    /// the young end; inserting into a full FIFO drops the oldest entry
    /// first. A zero-capacity outqueue makes this a no-op.
    ///
    /// The page must not be cached.
    pub fn outqueue_insert(&mut self, page: PageId, record: PageRecord) {
        let found = self.find(page).map(|(slot, _, cached)| {
            debug_assert!(!cached, "outqueue_insert of a cached page");
            slot
        });
        self.outqueue_insert_resolved(found, page, record);
    }

    /// Like [`PageTable::outqueue_insert`], but takes the result of a
    /// [`PageTable::find`]`(page)` performed by the caller *with no mutating
    /// call in between*, skipping the second probe of the bypass hot path.
    pub fn outqueue_insert_resolved(
        &mut self,
        found: Option<SlotRef>,
        page: PageId,
        record: PageRecord,
    ) {
        if self.outq_capacity == 0 {
            return;
        }
        match found {
            Some(slot) => {
                debug_assert_eq!(
                    self.slots[slot.0 as usize].page, page,
                    "stale slot handle passed to outqueue_insert_resolved"
                );
                let idx = slot.0;
                let s = &mut self.slots[idx as usize];
                s.seq = record.seq;
                s.hint = record.hint;
                self.outq_unlink(idx);
                self.outq_link_back(idx);
            }
            None => {
                if self.outq_len >= self.outq_capacity {
                    self.pop_outqueue_front();
                }
                let idx = self.alloc(page);
                let s = &mut self.slots[idx as usize];
                s.seq = record.seq;
                s.hint = record.hint;
                s.list = OUTQUEUE;
                self.outq_link_back(idx);
            }
        }
    }

    /// The eviction candidate per Figure 4 of the paper: the oldest page
    /// (smallest sequence number) among the front pages of the
    /// minimum-priority hint lists. The returned slot handle can be fed to
    /// [`PageTable::evict_slot_to_outqueue`] (valid until the next mutating
    /// call).
    pub fn find_victim(&self) -> Option<Victim> {
        let min_key = self.min_key?;
        debug_assert_eq!(
            Some(min_key),
            self.hint_lists
                .iter()
                .filter(|l| l.len > 0)
                .map(|l| l.key)
                .min(),
            "memoized minimum diverged from the hint lists"
        );
        let mut best: Option<(u64, u32, PageId, HintSetId)> = None;
        for &list_idx in &self.min_lists {
            let list = &self.hint_lists[list_idx as usize];
            debug_assert!(list.len > 0, "min-index list is occupied");
            let front = &self.slots[list.head as usize];
            match best {
                Some((best_seq, ..)) if best_seq <= front.seq => {}
                _ => best = Some((front.seq, list.head, front.page, list.hint)),
            }
        }
        best.map(|(_, slot, page, hint)| Victim {
            priority: f64::from_bits(min_key),
            slot: SlotRef(slot),
            page,
            hint,
        })
    }

    /// Re-derives every occupied hint list's priority key via `key_of` and
    /// rebuilds the minimum memo. Called whenever hint-set priorities change
    /// (window re-evaluation, snapshot import).
    pub fn refresh_keys(&mut self, mut key_of: impl FnMut(HintSetId) -> u64) {
        for list in &mut self.hint_lists {
            if list.len > 0 {
                list.key = key_of(list.hint);
            }
        }
        self.rebuild_min();
    }

    /// Returns, for each hint set with at least one cached page, the number
    /// of pages it holds, sorted by descending count.
    pub fn composition(&self) -> Vec<(HintSetId, usize)> {
        let mut out: Vec<(HintSetId, usize)> = self
            .hint_lists
            .iter()
            .filter(|l| l.len > 0)
            .map(|l| (l.hint, l.len as usize))
            .collect();
        out.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
        out
    }

    /// The current minimum priority key over occupied hint lists, if any.
    /// Exposed for diagnostics and invariant tests.
    pub fn min_key(&self) -> Option<u64> {
        self.min_key
    }

    /// The outqueue contents in FIFO order (oldest insertion first), for
    /// diagnostics and the differential tests.
    #[doc(hidden)]
    pub fn outqueue_snapshot(&self) -> Vec<(PageId, PageRecord)> {
        let mut out = Vec::with_capacity(self.outq_len);
        let mut cursor = self.outq_head;
        while cursor != NIL {
            let slot = &self.slots[cursor as usize];
            out.push((
                slot.page,
                PageRecord {
                    seq: slot.seq,
                    hint: slot.hint,
                },
            ));
            cursor = slot.next;
        }
        out
    }

    /// Checks every structural invariant listed in the module documentation,
    /// panicking with a description on the first violation. Intended for
    /// tests (the differential property suite calls it after every request);
    /// it is `O(slots + buckets)` and must stay off production paths.
    #[doc(hidden)]
    pub fn validate(&self) {
        // Bucket index: every non-empty bucket points at a live slot storing
        // a page that hashes back to a probe sequence covering the bucket.
        let mut via_buckets = 0usize;
        for &slot_idx in &self.buckets {
            if slot_idx == NIL {
                continue;
            }
            via_buckets += 1;
            let slot = &self.slots[slot_idx as usize];
            let (found, _, _) = self
                .find(slot.page)
                .unwrap_or_else(|| panic!("slot for {} unreachable via probing", slot.page));
            assert_eq!(
                found.0, slot_idx,
                "probe found a different slot for {}",
                slot.page
            );
        }
        assert_eq!(via_buckets, self.entries, "bucket count vs live entries");

        // Hint lists: consistent links, per-list length, membership tags.
        let mut cached = 0usize;
        for (list_idx, list) in self.hint_lists.iter().enumerate() {
            let mut walked = 0u32;
            let mut cursor = list.head;
            let mut prev = NIL;
            while cursor != NIL {
                let slot = &self.slots[cursor as usize];
                assert_eq!(slot.list, list_idx as u32, "slot in the wrong hint list");
                assert_eq!(slot.hint, list.hint, "slot hint disagrees with its list");
                assert_eq!(slot.prev, prev, "broken prev link in hint list");
                walked += 1;
                prev = cursor;
                cursor = slot.next;
            }
            assert_eq!(prev, list.tail, "hint list tail mismatch");
            assert_eq!(walked, list.len, "hint list length mismatch");
            cached += list.len as usize;
        }
        assert_eq!(cached, self.cached_len, "cached length mismatch");

        // Outqueue FIFO: consistent links and bounded length.
        let mut walked = 0usize;
        let mut cursor = self.outq_head;
        let mut prev = NIL;
        while cursor != NIL {
            let slot = &self.slots[cursor as usize];
            assert_eq!(slot.list, OUTQUEUE, "outqueue slot tagged as cached");
            assert_eq!(slot.prev, prev, "broken prev link in outqueue");
            walked += 1;
            prev = cursor;
            cursor = slot.next;
        }
        assert_eq!(prev, self.outq_tail, "outqueue tail mismatch");
        assert_eq!(walked, self.outq_len, "outqueue length mismatch");
        assert!(
            self.outq_len <= self.outq_capacity,
            "outqueue over capacity"
        );
        assert_eq!(self.entries, cached + walked, "live entries mismatch");

        // Victim memo: min_key/min_lists agree with a full scan.
        let scanned_min = self
            .hint_lists
            .iter()
            .filter(|l| l.len > 0)
            .map(|l| l.key)
            .min();
        assert_eq!(self.min_key, scanned_min, "memoized minimum is stale");
        if let Some(min) = scanned_min {
            let mut expected: Vec<u32> = (0..self.hint_lists.len() as u32)
                .filter(|&i| {
                    let l = &self.hint_lists[i as usize];
                    l.len > 0 && l.key == min
                })
                .collect();
            let mut memoized = self.min_lists.clone();
            expected.sort_by_key(|&i| self.hint_lists[i as usize].hint.0);
            memoized.sort_by_key(|&i| self.hint_lists[i as usize].hint.0);
            assert_eq!(memoized, expected, "memoized minimum lists are stale");
        } else {
            assert!(self.min_lists.is_empty(), "min lists must be empty");
        }
    }

    // ----- slab + bucket internals -------------------------------------

    /// Allocates a slot for `page` and inserts it into the bucket index.
    /// Links and record fields are left for the caller to fill in.
    fn alloc(&mut self, page: PageId) -> u32 {
        if (self.entries + 1) * 4 > self.buckets.len() * 3 {
            self.grow_buckets();
        }
        let idx = if self.free_head != NIL {
            let idx = self.free_head;
            self.free_head = self.slots[idx as usize].next;
            self.slots[idx as usize] = Slot {
                page,
                seq: 0,
                hint: HintSetId(0),
                list: OUTQUEUE,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            assert!(self.slots.len() < NIL as usize, "slab exhausted");
            self.slots.push(Slot {
                page,
                seq: 0,
                hint: HintSetId(0),
                list: OUTQUEUE,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        self.bucket_insert(page, idx);
        self.entries += 1;
        idx
    }

    /// Frees `idx`: removes it from the bucket index and pushes it onto the
    /// slab free list. The slot must already be unlinked from every list.
    fn release(&mut self, idx: u32) {
        self.bucket_remove(self.slots[idx as usize].page);
        self.slots[idx as usize].next = self.free_head;
        self.free_head = idx;
        self.entries -= 1;
    }

    #[inline]
    fn home_bucket(&self, page: PageId) -> usize {
        (page.0.wrapping_mul(FIB) >> self.bucket_shift) as usize
    }

    fn bucket_insert(&mut self, page: PageId, slot_idx: u32) {
        let mask = self.buckets.len() - 1;
        let mut bucket = self.home_bucket(page);
        while self.buckets[bucket] != NIL {
            debug_assert_ne!(
                self.slots[self.buckets[bucket] as usize].page, page,
                "duplicate page in bucket index"
            );
            bucket = (bucket + 1) & mask;
        }
        self.buckets[bucket] = slot_idx;
    }

    /// Removes `page`'s bucket using backward-shift deletion, so probe
    /// sequences stay dense without tombstones.
    fn bucket_remove(&mut self, page: PageId) {
        let mask = self.buckets.len() - 1;
        let mut bucket = self.home_bucket(page);
        loop {
            let slot_idx = self.buckets[bucket];
            assert_ne!(slot_idx, NIL, "removing a page absent from the index");
            if self.slots[slot_idx as usize].page == page {
                break;
            }
            bucket = (bucket + 1) & mask;
        }
        let mut hole = bucket;
        let mut probe = bucket;
        loop {
            probe = (probe + 1) & mask;
            let slot_idx = self.buckets[probe];
            if slot_idx == NIL {
                break;
            }
            let home = self.home_bucket(self.slots[slot_idx as usize].page);
            // The entry at `probe` may fill the hole iff its home bucket is
            // cyclically outside (hole, probe] — otherwise moving it would
            // break its own probe sequence.
            let home_in_range = if hole <= probe {
                home > hole && home <= probe
            } else {
                home > hole || home <= probe
            };
            if !home_in_range {
                self.buckets[hole] = slot_idx;
                hole = probe;
            }
        }
        self.buckets[hole] = NIL;
    }

    fn grow_buckets(&mut self) {
        let new_len = self.buckets.len() * 2;
        self.buckets = vec![NIL; new_len];
        self.bucket_shift = 64 - new_len.trailing_zeros();
        // Re-insert every live slot (free-list slots are unreachable from the
        // intrusive lists, so enumerate via list membership instead: a live
        // slot is exactly one whose page probes back to it — walk all lists).
        let mut live: Vec<u32> = Vec::with_capacity(self.entries);
        for list in &self.hint_lists {
            let mut cursor = list.head;
            while cursor != NIL {
                live.push(cursor);
                cursor = self.slots[cursor as usize].next;
            }
        }
        let mut cursor = self.outq_head;
        while cursor != NIL {
            live.push(cursor);
            cursor = self.slots[cursor as usize].next;
        }
        debug_assert_eq!(live.len(), self.entries);
        for idx in live {
            self.bucket_insert(self.slots[idx as usize].page, idx);
        }
    }

    // ----- hint list internals -----------------------------------------

    /// Dense index of `hint`'s list, creating an empty list on first use.
    fn list_of(&mut self, hint: HintSetId) -> u32 {
        if let Some(&idx) = self.hint_index.get(&hint) {
            return idx;
        }
        let idx = self.hint_lists.len() as u32;
        self.hint_lists.push(HintList {
            hint,
            head: NIL,
            tail: NIL,
            len: 0,
            key: 0,
        });
        self.hint_index.insert(hint, idx);
        idx
    }

    fn hint_link_back(&mut self, list_idx: u32, slot_idx: u32) {
        let old_tail = {
            let list = &mut self.hint_lists[list_idx as usize];
            let old_tail = list.tail;
            list.tail = slot_idx;
            list.len += 1;
            if old_tail == NIL {
                list.head = slot_idx;
            }
            old_tail
        };
        if old_tail != NIL {
            self.slots[old_tail as usize].next = slot_idx;
        }
        let slot = &mut self.slots[slot_idx as usize];
        slot.prev = old_tail;
        slot.next = NIL;
    }

    fn hint_unlink(&mut self, list_idx: u32, slot_idx: u32) {
        let (prev, next) = {
            let slot = &self.slots[slot_idx as usize];
            (slot.prev, slot.next)
        };
        let list = &mut self.hint_lists[list_idx as usize];
        if prev == NIL {
            list.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        let list = &mut self.hint_lists[list_idx as usize];
        if next == NIL {
            list.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        self.hint_lists[list_idx as usize].len -= 1;
        let slot = &mut self.slots[slot_idx as usize];
        slot.prev = NIL;
        slot.next = NIL;
    }

    // ----- outqueue internals ------------------------------------------

    fn outq_link_back(&mut self, slot_idx: u32) {
        let old_tail = self.outq_tail;
        self.outq_tail = slot_idx;
        if old_tail == NIL {
            self.outq_head = slot_idx;
        } else {
            self.slots[old_tail as usize].next = slot_idx;
        }
        let slot = &mut self.slots[slot_idx as usize];
        slot.prev = old_tail;
        slot.next = NIL;
        self.outq_len += 1;
    }

    fn outq_unlink(&mut self, slot_idx: u32) {
        let (prev, next) = {
            let slot = &self.slots[slot_idx as usize];
            (slot.prev, slot.next)
        };
        if prev == NIL {
            self.outq_head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.outq_tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
        let slot = &mut self.slots[slot_idx as usize];
        slot.prev = NIL;
        slot.next = NIL;
        self.outq_len -= 1;
    }

    /// Drops (and frees) the least recently inserted outqueue entry.
    fn pop_outqueue_front(&mut self) {
        let head = self.outq_head;
        debug_assert_ne!(head, NIL, "popping an empty outqueue");
        self.outq_unlink(head);
        self.release(head);
    }

    // ----- victim memo internals ---------------------------------------

    /// Updates the minimum memo after `list_idx` transitioned empty →
    /// occupied with priority key `key`.
    fn note_occupied(&mut self, list_idx: u32, key: u64) {
        self.hint_lists[list_idx as usize].key = key;
        match self.min_key {
            Some(min) if key > min => {}
            Some(min) if key == min => self.min_lists.push(list_idx),
            _ => {
                self.min_key = Some(key);
                self.min_lists.clear();
                self.min_lists.push(list_idx);
            }
        }
    }

    /// Updates the minimum memo if `list_idx` just became empty.
    fn note_if_emptied(&mut self, list_idx: u32) {
        if self.hint_lists[list_idx as usize].len > 0 {
            return;
        }
        let key = self.hint_lists[list_idx as usize].key;
        if self.min_key == Some(key) {
            self.min_lists.retain(|&l| l != list_idx);
            if self.min_lists.is_empty() {
                self.rebuild_min();
            }
        }
    }

    /// Recomputes the minimum memo from scratch: scan every occupied list,
    /// collect the indices attaining the minimum key in ascending
    /// [`HintSetId`] order (matching the retired ordered index).
    fn rebuild_min(&mut self) {
        self.min_lists.clear();
        self.min_key = self
            .hint_lists
            .iter()
            .filter(|l| l.len > 0)
            .map(|l| l.key)
            .min();
        if let Some(min) = self.min_key {
            self.min_lists
                .extend((0..self.hint_lists.len() as u32).filter(|&i| {
                    let l = &self.hint_lists[i as usize];
                    l.len > 0 && l.key == min
                }));
            self.min_lists
                .sort_by_key(|&i| self.hint_lists[i as usize].hint.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, hint: u32) -> PageRecord {
        PageRecord {
            seq,
            hint: HintSetId(hint),
        }
    }

    #[test]
    fn admit_find_and_composition() {
        let mut t = PageTable::new(8, 8);
        t.admit(PageId(1), rec(0, 0), || 5);
        t.admit(PageId(2), rec(1, 0), || 5);
        t.admit(PageId(3), rec(2, 1), || 9);
        assert_eq!(t.cached_len(), 3);
        assert!(t.contains(PageId(2)));
        assert!(!t.contains(PageId(9)));
        let (_, record, cached) = t.find(PageId(3)).unwrap();
        assert!(cached);
        assert_eq!(record, rec(2, 1));
        assert_eq!(t.composition(), vec![(HintSetId(0), 2), (HintSetId(1), 1)]);
        assert_eq!(t.min_key(), Some(5));
        t.validate();
    }

    #[test]
    fn victim_is_oldest_of_lowest_priority_list() {
        let mut t = PageTable::new(8, 8);
        t.admit(PageId(10), rec(0, 0), || 5);
        t.admit(PageId(11), rec(1, 0), || 5);
        t.admit(PageId(20), rec(2, 1), || 3);
        t.admit(PageId(21), rec(3, 1), || 3);
        let victim = t.find_victim().unwrap();
        assert_eq!(victim.priority.to_bits(), 3);
        assert_eq!(victim.page, PageId(20));
        assert_eq!(victim.hint, HintSetId(1));
        // Touching the front page makes the next-oldest the victim.
        let (slot, ..) = t.find(PageId(20)).unwrap();
        t.record_hit(slot, 4, HintSetId(1), || 3);
        assert_eq!(t.find_victim().unwrap().page, PageId(21));
        t.validate();
    }

    #[test]
    fn ties_between_lists_break_by_oldest_sequence() {
        let mut t = PageTable::new(8, 8);
        t.admit(PageId(1), rec(5, 0), || 7);
        t.admit(PageId(2), rec(3, 1), || 7);
        t.admit(PageId(3), rec(4, 2), || 9);
        let victim = t.find_victim().unwrap();
        assert_eq!(victim.page, PageId(2));
        assert_eq!(victim.hint, HintSetId(1));
        t.validate();
    }

    #[test]
    fn evict_moves_record_to_outqueue_and_bounds_it() {
        let mut t = PageTable::new(8, 2);
        for p in 0..4u64 {
            t.admit(PageId(p), rec(p, 0), || 1);
        }
        t.evict_to_outqueue(PageId(0));
        t.evict_to_outqueue(PageId(1));
        t.evict_to_outqueue(PageId(2)); // drops page 0, the oldest entry
        assert_eq!(t.cached_len(), 1);
        assert_eq!(t.outqueue_len(), 2);
        assert!(t.find(PageId(0)).is_none());
        let (_, record, cached) = t.find(PageId(1)).unwrap();
        assert!(!cached);
        assert_eq!(record, rec(1, 0));
        t.validate();
        // Re-admitting from the outqueue reuses the slot and leaves the FIFO.
        t.admit(PageId(1), rec(9, 2), || 4);
        assert_eq!(t.outqueue_len(), 1);
        assert!(t.contains(PageId(1)));
        t.validate();
    }

    #[test]
    fn outqueue_insert_refreshes_and_rotates() {
        let mut t = PageTable::new(4, 2);
        t.outqueue_insert(PageId(1), rec(1, 0));
        t.outqueue_insert(PageId(2), rec(2, 0));
        t.outqueue_insert(PageId(1), rec(9, 1)); // refresh: now youngest
        t.outqueue_insert(PageId(3), rec(3, 0)); // drops page 2
        assert!(t.find(PageId(2)).is_none());
        assert_eq!(t.find(PageId(1)).unwrap().1, rec(9, 1));
        assert_eq!(t.outqueue_len(), 2);
        t.validate();
    }

    #[test]
    fn zero_capacity_outqueue_forgets_everything() {
        let mut t = PageTable::new(2, 0);
        t.outqueue_insert(PageId(1), rec(1, 0));
        assert_eq!(t.outqueue_len(), 0);
        t.admit(PageId(2), rec(2, 0), || 1);
        t.evict_to_outqueue(PageId(2));
        assert_eq!(t.cached_len(), 0);
        assert!(t.find(PageId(2)).is_none());
        assert_eq!(t.find_victim(), None);
        t.validate();
    }

    #[test]
    fn refresh_keys_rebuilds_the_minimum() {
        let mut t = PageTable::new(8, 4);
        t.admit(PageId(1), rec(0, 0), || 5);
        t.admit(PageId(2), rec(1, 1), || 9);
        t.refresh_keys(|hint| if hint == HintSetId(1) { 2 } else { 8 });
        assert_eq!(t.min_key(), Some(2));
        assert_eq!(t.find_victim().unwrap().hint, HintSetId(1));
        t.validate();
    }

    #[test]
    fn bucket_index_survives_churn_and_growth() {
        // Small initial table: capacity hints are tiny so the bucket array
        // must grow; interleave admits, evictions, and bypass inserts.
        let mut t = PageTable::new(2, 2);
        for round in 0..2_000u64 {
            let page = PageId(round % 37 + (round / 7) % 13 * 1000);
            match t.find(page) {
                Some((slot, _, true)) => t.record_hit(slot, round, HintSetId(0), || 1),
                _ if t.cached_len() < 2 => t.admit(page, rec(round, 0), || 1),
                _ => {
                    if round % 3 == 0 {
                        let victim = t.find_victim().unwrap();
                        t.evict_slot_to_outqueue(victim.slot);
                        t.admit(page, rec(round, 0), || 1);
                    } else {
                        t.outqueue_insert(page, rec(round, 0));
                    }
                }
            }
            if round % 97 == 0 {
                t.validate();
            }
        }
        t.validate();
    }
}
