//! The hint-set priority table and its exponentially smoothed updates.
//!
//! At the end of every window CLIC converts the window's per-hint-set
//! statistics into raw priorities `P̂r(H)` (Equation 2) and folds them into
//! the working priorities with exponential smoothing (Equation 3):
//!
//! ```text
//! Pr(H)_i = r · P̂r(H)_i + (1 − r) · Pr(H)_{i−1}
//! ```
//!
//! Hint sets for which the window produced no statistics keep their previous
//! priority scaled by `(1 − r)` — with the paper's `r = 1` this means they
//! drop to zero, i.e. priorities are based entirely on the latest window.

use cache_sim::hash::FastHashMap;
use cache_sim::HintSetId;

use crate::stats::HintWindowStats;

/// Maps a non-negative priority to an integer key whose ordering matches the
/// float ordering, so hint-set priorities can be compared and indexed as
/// plain integers (the [`crate::page_table::PageTable`] victim index stores
/// these keys). Non-negative finite IEEE-754 doubles compare identically to
/// their bit patterns.
#[inline]
pub fn priority_key(priority: f64) -> u64 {
    debug_assert!(priority >= 0.0 && priority.is_finite());
    priority.to_bits()
}

/// The current caching priority `Pr(H)` of every known hint set.
///
/// Lookups sit on the policy's full-cache admission path (one per miss), so
/// the table uses the workspace's fast trusted-key hasher.
#[derive(Debug, Clone, Default)]
pub struct PriorityTable {
    priorities: FastHashMap<HintSetId, f64>,
    windows_completed: u64,
}

impl PriorityTable {
    /// Creates an empty table (every hint set starts at priority zero).
    pub fn new() -> Self {
        PriorityTable::default()
    }

    /// The current priority of `hint` (zero if never seen).
    #[inline]
    pub fn priority(&self, hint: HintSetId) -> f64 {
        self.priorities.get(&hint).copied().unwrap_or(0.0)
    }

    /// The current priority of `hint` as an order-preserving integer key
    /// (see [`priority_key`]).
    #[inline]
    pub fn key(&self, hint: HintSetId) -> u64 {
        priority_key(self.priority(hint))
    }

    /// Number of hint sets with a recorded (possibly zero) priority.
    pub fn len(&self) -> usize {
        self.priorities.len()
    }

    /// Returns `true` if no priorities have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.priorities.is_empty()
    }

    /// Number of windows that have been folded into the table.
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// Folds one window's statistics into the table using smoothing factor
    /// `r` (Equation 3). Hint sets absent from `window` decay by `(1 − r)`.
    pub fn apply_window(&mut self, window: &[(HintSetId, HintWindowStats)], r: f64) {
        // First decay every existing priority; hint sets present in the new
        // window will have the `r · P̂r` term added below.
        if (r - 1.0).abs() > f64::EPSILON {
            for value in self.priorities.values_mut() {
                *value *= 1.0 - r;
            }
        } else {
            for value in self.priorities.values_mut() {
                *value = 0.0;
            }
        }
        for (hint, stats) in window {
            let fresh = stats.priority();
            let entry = self.priorities.entry(*hint).or_insert(0.0);
            *entry += r * fresh;
        }
        self.windows_completed += 1;
    }

    /// Iterates over `(hint set, priority)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (HintSetId, f64)> + '_ {
        self.priorities.iter().map(|(&h, &p)| (h, p))
    }

    /// Replaces the table's contents with `snapshot`, leaving the window
    /// counter untouched.
    ///
    /// Unlike [`PriorityTable::apply_window`], this installs the given
    /// priorities *exactly* — no smoothing, no decay of absent hint sets.
    /// [`ShardedClic`]-style deployments use it to push merged cross-shard
    /// priorities back into each shard; loading a table's own snapshot is a
    /// no-op.
    ///
    /// [`ShardedClic`]: https://docs.rs/clic-server
    pub fn load_snapshot<I>(&mut self, snapshot: I)
    where
        I: IntoIterator<Item = (HintSetId, f64)>,
    {
        self.priorities = snapshot.into_iter().collect();
    }

    /// Clears all priorities and the window counter.
    pub fn clear(&mut self) {
        self.priorities.clear();
        self.windows_completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(requests: u64, rerefs: u64, dist_sum: u64) -> HintWindowStats {
        HintWindowStats {
            requests,
            read_rereferences: rerefs,
            distance_sum: dist_sum,
        }
    }

    #[test]
    fn unknown_hints_have_zero_priority() {
        let table = PriorityTable::new();
        assert_eq!(table.priority(HintSetId(7)), 0.0);
        assert!(table.is_empty());
    }

    #[test]
    fn r_equal_one_uses_only_the_latest_window() {
        let mut table = PriorityTable::new();
        let h = HintSetId(1);
        table.apply_window(&[(h, stats(10, 5, 500))], 1.0);
        let first = table.priority(h);
        assert!(first > 0.0);
        // Second window: the hint set vanished; with r = 1 its priority must
        // drop to zero.
        table.apply_window(&[], 1.0);
        assert_eq!(table.priority(h), 0.0);
        assert_eq!(table.windows_completed(), 2);
    }

    #[test]
    fn smoothing_blends_old_and_new() {
        let mut table = PriorityTable::new();
        let h = HintSetId(1);
        // Window 1: priority 0.01 (fhit 0.5, D 50).
        table.apply_window(&[(h, stats(10, 5, 250))], 0.5);
        let p1 = table.priority(h);
        assert!((p1 - 0.5 * 0.01).abs() < 1e-12);
        // Window 2: no observations; priority halves.
        table.apply_window(&[], 0.5);
        assert!((table.priority(h) - p1 * 0.5).abs() < 1e-12);
        // Window 3: fresh priority 0.02 (fhit 1.0, D 50).
        table.apply_window(&[(h, stats(10, 10, 500))], 0.5);
        let expected = p1 * 0.25 + 0.5 * 0.02;
        assert!((table.priority(h) - expected).abs() < 1e-12);
    }

    #[test]
    fn multiple_hint_sets_are_ranked_sensibly() {
        let mut table = PriorityTable::new();
        let hot = HintSetId(1); // frequently and quickly re-referenced
        let warm = HintSetId(2); // re-referenced but slowly
        let cold = HintSetId(3); // never re-referenced
        table.apply_window(
            &[
                (hot, stats(100, 90, 90 * 20)),
                (warm, stats(100, 90, 90 * 2_000)),
                (cold, stats(100, 0, 0)),
            ],
            1.0,
        );
        assert!(table.priority(hot) > table.priority(warm));
        assert!(table.priority(warm) > table.priority(cold));
        assert_eq!(table.priority(cold), 0.0);
        assert_eq!(table.len(), 3);
    }

    #[test]
    fn load_snapshot_replaces_contents_exactly() {
        let mut table = PriorityTable::new();
        table.apply_window(&[(HintSetId(1), stats(10, 5, 500))], 1.0);
        let windows = table.windows_completed();
        table.load_snapshot([(HintSetId(2), 0.25), (HintSetId(3), 0.5)]);
        assert_eq!(table.priority(HintSetId(1)), 0.0);
        assert_eq!(table.priority(HintSetId(2)), 0.25);
        assert_eq!(table.priority(HintSetId(3)), 0.5);
        assert_eq!(table.windows_completed(), windows);
        // Loading a table's own snapshot is a no-op.
        let snapshot: Vec<_> = table.iter().collect();
        table.load_snapshot(snapshot.clone());
        let mut after: Vec<_> = table.iter().collect();
        let mut before = snapshot;
        before.sort_by_key(|(h, _)| h.0);
        after.sort_by_key(|(h, _)| h.0);
        assert_eq!(before, after);
    }

    #[test]
    fn clear_resets_table() {
        let mut table = PriorityTable::new();
        table.apply_window(&[(HintSetId(1), stats(1, 1, 1))], 1.0);
        table.clear();
        assert!(table.is_empty());
        assert_eq!(table.windows_completed(), 0);
    }
}
