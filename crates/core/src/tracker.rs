//! Hint-set statistics trackers: the full hint table and the top-k variant.
//!
//! CLIC needs `N(H)`, `Nr(H)` and `D(H)` per hint set per window. The paper
//! describes two ways of maintaining them:
//!
//! * a **hint table** with one entry per distinct hint set ever observed
//!   (Section 3.1) — exact, but its size grows with the number of hint sets;
//! * a **top-k tracker** built on an adapted Space-Saving summary
//!   (Section 5) — bounded space, tracking only the most frequent hint sets
//!   and treating everything else as priority zero.
//!
//! Both implement [`HintStatsTracker`], so the policy and the experiments can
//! switch between them with a configuration flag.

use std::collections::HashMap;

use cache_sim::HintSetId;
use stream_stats::SpaceSaving;

use crate::stats::HintWindowStats;

/// Interface over the two statistics-tracking strategies.
pub trait HintStatsTracker {
    /// Records a request carrying `hint` (increments `N(H)`).
    fn record_request(&mut self, hint: HintSetId);

    /// Records that a request previously made with `hint` was read
    /// re-referenced at the given distance (increments `Nr(H)` and
    /// accumulates `D(H)`).
    fn record_read_rereference(&mut self, hint: HintSetId, distance: u64);

    /// Returns the statistics accumulated in the current window for every
    /// tracked hint set, then clears the window state.
    fn end_window(&mut self) -> Vec<(HintSetId, HintWindowStats)>;

    /// Number of hint sets currently tracked.
    fn tracked_len(&self) -> usize;

    /// An estimate of the number of bookkeeping entries this tracker may
    /// hold at once (`usize::MAX` for the unbounded full tracker); used by
    /// the space-accounting experiments.
    fn space_bound(&self) -> usize;

    /// Forgets all state.
    fn clear(&mut self);
}

/// The unbounded hint table: one [`HintWindowStats`] entry per distinct hint
/// set observed during the current window.
#[derive(Debug, Clone, Default)]
pub struct FullTracker {
    table: HashMap<HintSetId, HintWindowStats>,
}

impl FullTracker {
    /// Creates an empty hint table.
    pub fn new() -> Self {
        FullTracker::default()
    }
}

impl HintStatsTracker for FullTracker {
    fn record_request(&mut self, hint: HintSetId) {
        self.table.entry(hint).or_default().record_request();
    }

    fn record_read_rereference(&mut self, hint: HintSetId, distance: u64) {
        self.table
            .entry(hint)
            .or_default()
            .record_read_rereference(distance);
    }

    fn end_window(&mut self) -> Vec<(HintSetId, HintWindowStats)> {
        let out: Vec<(HintSetId, HintWindowStats)> =
            self.table.iter().map(|(&h, &s)| (h, s)).collect();
        self.table.clear();
        out
    }

    fn tracked_len(&self) -> usize {
        self.table.len()
    }

    fn space_bound(&self) -> usize {
        usize::MAX
    }

    fn clear(&mut self) {
        self.table.clear();
    }
}

/// Auxiliary per-hint-set counters carried inside the Space-Saving summary:
/// the re-reference count and distance accumulator that the paper adds to the
/// algorithm (Section 5). They are reset whenever the summary recycles a
/// counter for a different hint set, exactly as specified.
#[derive(Debug, Clone, Copy, Default)]
struct RereferenceAux {
    read_rereferences: u64,
    distance_sum: u64,
}

/// The bounded tracker: an adapted Space-Saving summary over hint sets.
///
/// `N(H)` is taken as the summary's *guaranteed* count (estimate minus error
/// bound), `Nr(H)` and the distance sum are only accumulated while `H` is
/// being monitored, and hint sets that are not monitored report no
/// statistics at all (hence priority zero), all as described in the paper.
#[derive(Debug, Clone)]
pub struct TopKTracker {
    summary: SpaceSaving<HintSetId, RereferenceAux>,
    k: usize,
}

impl TopKTracker {
    /// Creates a tracker monitoring at most `k` hint sets.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        TopKTracker {
            summary: SpaceSaving::new(k),
            k,
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl HintStatsTracker for TopKTracker {
    fn record_request(&mut self, hint: HintSetId) {
        self.summary.observe(hint);
    }

    fn record_read_rereference(&mut self, hint: HintSetId, distance: u64) {
        // Only counted while the hint set is being monitored (paper, Sec. 5).
        if let Some(aux) = self.summary.aux_mut(&hint) {
            aux.read_rereferences += 1;
            aux.distance_sum += distance;
        }
    }

    fn end_window(&mut self) -> Vec<(HintSetId, HintWindowStats)> {
        let out: Vec<(HintSetId, HintWindowStats)> = self
            .summary
            .entries()
            .into_iter()
            .map(|(hint, estimate, aux)| {
                (
                    hint,
                    HintWindowStats {
                        // N(H): frequency estimate minus its error bound.
                        requests: estimate.guaranteed(),
                        read_rereferences: aux.read_rereferences,
                        distance_sum: aux.distance_sum,
                    },
                )
            })
            .collect();
        // The Space-Saving state is restarted from scratch every window.
        self.summary.clear();
        out
    }

    fn tracked_len(&self) -> usize {
        self.summary.len()
    }

    fn space_bound(&self) -> usize {
        self.k
    }

    fn clear(&mut self) {
        self.summary.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(id: u32) -> HintSetId {
        HintSetId(id)
    }

    #[test]
    fn full_tracker_counts_exactly() {
        let mut t = FullTracker::new();
        for _ in 0..10 {
            t.record_request(h(1));
        }
        for _ in 0..3 {
            t.record_request(h(2));
        }
        t.record_read_rereference(h(1), 100);
        t.record_read_rereference(h(1), 200);
        let mut window = t.end_window();
        window.sort_by_key(|(hint, _)| hint.0);
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].1.requests, 10);
        assert_eq!(window[0].1.read_rereferences, 2);
        assert_eq!(window[0].1.distance_sum, 300);
        assert_eq!(window[1].1.requests, 3);
        // Window state is cleared afterwards.
        assert_eq!(t.tracked_len(), 0);
        assert_eq!(t.space_bound(), usize::MAX);
    }

    #[test]
    fn topk_tracker_keeps_frequent_hints() {
        let mut t = TopKTracker::new(2);
        // Hint 1 dominates; hints 2..20 are noise.
        for i in 0..1000u32 {
            t.record_request(h(1));
            t.record_request(h(2 + (i % 19)));
            t.record_read_rereference(h(1), 10);
        }
        assert!(t.tracked_len() <= 2);
        assert_eq!(t.space_bound(), 2);
        let window = t.end_window();
        let hot = window
            .iter()
            .find(|(hint, _)| *hint == h(1))
            .expect("the dominant hint set must be monitored");
        assert!(
            hot.1.requests >= 900,
            "guaranteed count should be close to 1000"
        );
        assert_eq!(hot.1.read_rereferences, 1000);
        // State restarts after the window.
        assert_eq!(t.tracked_len(), 0);
    }

    #[test]
    fn topk_ignores_rereferences_for_unmonitored_hints() {
        let mut t = TopKTracker::new(1);
        t.record_request(h(1));
        // Hint 2 is never requested, so it is not monitored; its
        // re-references must be dropped rather than attributed elsewhere.
        t.record_read_rereference(h(2), 5);
        let window = t.end_window();
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].0, h(1));
        assert_eq!(window[0].1.read_rereferences, 0);
    }

    #[test]
    fn topk_aux_resets_when_counter_is_recycled() {
        let mut t = TopKTracker::new(1);
        t.record_request(h(1));
        t.record_read_rereference(h(1), 42);
        // Hint 2 steals the only counter; its aux must start fresh.
        t.record_request(h(2));
        t.record_read_rereference(h(2), 7);
        let window = t.end_window();
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].0, h(2));
        assert_eq!(window[0].1.read_rereferences, 1);
        assert_eq!(window[0].1.distance_sum, 7);
    }

    #[test]
    fn clear_resets_both_trackers() {
        let mut full = FullTracker::new();
        full.record_request(h(1));
        full.clear();
        assert_eq!(full.tracked_len(), 0);

        let mut topk = TopKTracker::new(4);
        topk.record_request(h(1));
        topk.clear();
        assert_eq!(topk.tracked_len(), 0);
    }
}
