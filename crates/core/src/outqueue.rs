//! The outqueue: bounded memory of recently seen but uncached pages.
//!
//! To recognize read re-references, CLIC must remember the sequence number
//! and hint set of the most recent request for a page. It records this for
//! every cached page (the policy keeps that metadata itself) **plus** a fixed
//! number `Noutq` of additional, uncached pages. The outqueue stores the
//! latter: entries are inserted when a page is evicted from the cache or when
//! CLIC declines to cache a requested page, and the least recently *inserted*
//! entry is dropped when the queue is full (Section 3.1).
//!
//! Evicting the oldest insertion biases the tracker toward detecting *short*
//! re-reference distances — precisely the re-references that lead to high
//! caching priorities — which the paper argues is the right bias.

use std::collections::HashMap;

use cache_sim::policies::util::OrderedPageSet;
#[cfg(test)]
use cache_sim::HintSetId;
use cache_sim::PageId;

pub use crate::page_table::PageRecord;

/// A bounded FIFO map from uncached pages to their most recent request
/// metadata.
///
/// This stand-alone container is the *reference* outqueue: the production
/// policy threads its outqueue through the shared slab in
/// [`crate::page_table::PageTable`] instead, and the differential tests hold
/// the two implementations to identical behaviour. [`PageRecord`] is defined
/// once, in the slab module, and re-exported here.
#[derive(Debug, Clone)]
pub struct OutQueue {
    capacity: usize,
    records: HashMap<PageId, PageRecord>,
    order: OrderedPageSet,
}

impl OutQueue {
    /// Creates an outqueue holding at most `capacity` entries. A capacity of
    /// zero disables the outqueue entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        OutQueue {
            capacity,
            records: HashMap::with_capacity(capacity.min(1 << 20)),
            order: OrderedPageSet::with_capacity(capacity.min(1 << 20)),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the outqueue holds no entries.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up the remembered record for `page`, if any.
    pub fn get(&self, page: PageId) -> Option<PageRecord> {
        self.records.get(&page).copied()
    }

    /// Inserts (or refreshes) the record for `page`. If the queue is full,
    /// the least recently inserted entry is dropped first. Re-inserting an
    /// existing page updates its record and moves it to the youngest
    /// position.
    pub fn insert(&mut self, page: PageId, record: PageRecord) {
        if self.capacity == 0 {
            return;
        }
        if self.records.contains_key(&page) {
            self.records.insert(page, record);
            self.order.touch(page);
            return;
        }
        if self.records.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.records.remove(&oldest);
            }
        }
        self.records.insert(page, record);
        self.order.push_back(page);
    }

    /// Removes the record for `page` (used when the page is admitted to the
    /// cache, where the policy keeps its metadata instead). Returns the
    /// removed record, if any.
    pub fn remove(&mut self, page: PageId) -> Option<PageRecord> {
        let record = self.records.remove(&page);
        if record.is_some() {
            self.order.remove(page);
        }
        record
    }

    /// The contents in FIFO order (oldest insertion first), for diagnostics
    /// and the differential tests.
    #[doc(hidden)]
    pub fn snapshot(&self) -> Vec<(PageId, PageRecord)> {
        self.order
            .iter()
            .map(|page| (page, self.records[&page]))
            .collect()
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.records.clear();
        while self.order.pop_front().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> PageRecord {
        PageRecord {
            seq,
            hint: HintSetId(0),
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut q = OutQueue::new(4);
        q.insert(PageId(1), rec(10));
        q.insert(PageId(2), rec(11));
        assert_eq!(q.get(PageId(1)).unwrap().seq, 10);
        assert_eq!(q.get(PageId(3)), None);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oldest_insertion_is_evicted_when_full() {
        let mut q = OutQueue::new(2);
        q.insert(PageId(1), rec(1));
        q.insert(PageId(2), rec(2));
        q.insert(PageId(3), rec(3));
        assert_eq!(q.get(PageId(1)), None, "page 1 was the oldest insertion");
        assert!(q.get(PageId(2)).is_some());
        assert!(q.get(PageId(3)).is_some());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_age_and_record() {
        let mut q = OutQueue::new(2);
        q.insert(PageId(1), rec(1));
        q.insert(PageId(2), rec(2));
        // Refresh page 1: it becomes the youngest, so page 2 is evicted next.
        q.insert(PageId(1), rec(99));
        q.insert(PageId(3), rec(3));
        assert_eq!(q.get(PageId(1)).unwrap().seq, 99);
        assert_eq!(q.get(PageId(2)), None);
    }

    #[test]
    fn remove_frees_a_slot() {
        let mut q = OutQueue::new(2);
        q.insert(PageId(1), rec(1));
        q.insert(PageId(2), rec(2));
        assert_eq!(q.remove(PageId(1)).unwrap().seq, 1);
        assert_eq!(q.remove(PageId(1)), None);
        q.insert(PageId(3), rec(3));
        assert_eq!(q.len(), 2);
        assert!(q.get(PageId(2)).is_some());
        assert!(q.get(PageId(3)).is_some());
    }

    #[test]
    fn zero_capacity_disables_tracking() {
        let mut q = OutQueue::new(0);
        q.insert(PageId(1), rec(1));
        assert!(q.is_empty());
        assert_eq!(q.get(PageId(1)), None);
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = OutQueue::new(4);
        for p in 0..4u64 {
            q.insert(PageId(p), rec(p));
        }
        q.clear();
        assert!(q.is_empty());
        q.insert(PageId(9), rec(9));
        assert_eq!(q.len(), 1);
    }
}
