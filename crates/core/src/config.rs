//! Configuration for the CLIC policy.

use std::fmt;

/// How CLIC tracks per-hint-set statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackingMode {
    /// Maintain a hint-table entry for every distinct hint set observed
    /// (Section 3.1 of the paper). Space grows with the number of hint sets.
    Full,
    /// Track only the (approximately) `k` most frequent hint sets using the
    /// adapted Space-Saving algorithm (Section 5). Hint sets that are not
    /// currently tracked are treated as having priority zero.
    TopK(usize),
}

impl fmt::Display for TrackingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrackingMode::Full => write!(f, "full"),
            TrackingMode::TopK(k) => write!(f, "top-{k}"),
        }
    }
}

/// Suggests a priority-window size `W` for a trace of `trace_len` requests.
///
/// The paper uses `W = 10⁶` on traces of 3–640 M requests, i.e. between a few
/// and a few hundred priority re-evaluations per run. Scaled-down traces need
/// the *number of evaluations* preserved, not the absolute window: CLIC's
/// statistics are censored by the bounded outqueue (re-references longer than
/// its reach go unobserved while a page is uncached), and the resulting
/// priority misestimates are only corrected a window or two after the
/// affected pages become resident. With too few windows per run that
/// correction loop cannot converge — on multi-client traces it visibly
/// starves the best client. Targeting ~80 evaluations (floor 1 000, cap at
/// the paper's 10⁶) keeps the loop fast enough to converge at smoke scale
/// while staying inside the paper's evaluations-per-run range.
pub fn suggested_window(trace_len: u64) -> u64 {
    (trace_len / 80).clamp(1_000, 1_000_000)
}

/// Tunable parameters of the CLIC policy.
///
/// The defaults reproduce the configuration used throughout the paper's
/// evaluation: window size `W = 10⁶` requests, smoothing factor `r = 1`,
/// an outqueue of 5 entries per cache page, full hint tracking, and the 1 %
/// cache-size reduction that charges CLIC for its tracking metadata.
///
/// # Example
///
/// ```
/// use clic_core::{ClicConfig, TrackingMode};
///
/// let config = ClicConfig::default()
///     .with_window(100_000)
///     .with_smoothing(0.5)
///     .with_outqueue_factor(5.0)
///     .with_tracking(TrackingMode::TopK(20));
/// assert_eq!(config.window, 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClicConfig {
    /// Window size `W`: number of requests between priority re-evaluations.
    pub window: u64,
    /// Smoothing factor `r` in `Pr_i = r·P̂r_i + (1−r)·Pr_{i−1}`; must be in
    /// `(0, 1]`. `r = 1` (the paper's setting) uses only the latest window.
    pub smoothing: f64,
    /// Outqueue size expressed as a multiple of the cache capacity
    /// (`Noutq = factor × capacity`). The paper uses 5.
    pub outqueue_factor: f64,
    /// How hint-set statistics are tracked.
    pub tracking: TrackingMode,
    /// If `true`, CLIC's usable cache capacity is reduced by
    /// `metadata_overhead` to pay for the sequence number and hint-set id it
    /// records per tracked page, matching the paper's space accounting.
    pub charge_metadata: bool,
    /// Fraction of the nominal capacity charged for metadata when
    /// `charge_metadata` is set (the paper estimates roughly 1 %).
    pub metadata_overhead: f64,
}

impl Default for ClicConfig {
    fn default() -> Self {
        ClicConfig {
            window: 1_000_000,
            smoothing: 1.0,
            outqueue_factor: 5.0,
            tracking: TrackingMode::Full,
            charge_metadata: true,
            metadata_overhead: 0.01,
        }
    }
}

impl ClicConfig {
    /// Creates the paper's default configuration.
    pub fn new() -> Self {
        ClicConfig::default()
    }

    /// Sets the window size `W` (requests between priority re-evaluations).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: u64) -> Self {
        assert!(window > 0, "window size must be positive");
        self.window = window;
        self
    }

    /// Sets the smoothing factor `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `(0, 1]`.
    pub fn with_smoothing(mut self, r: f64) -> Self {
        assert!(
            r > 0.0 && r <= 1.0,
            "smoothing factor must be in (0, 1], got {r}"
        );
        self.smoothing = r;
        self
    }

    /// Sets the outqueue size as a multiple of the cache capacity.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn with_outqueue_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "outqueue factor must be a non-negative finite number, got {factor}"
        );
        self.outqueue_factor = factor;
        self
    }

    /// Sets the hint-statistics tracking mode.
    ///
    /// # Panics
    ///
    /// Panics if a [`TrackingMode::TopK`] with `k = 0` is supplied.
    pub fn with_tracking(mut self, tracking: TrackingMode) -> Self {
        if let TrackingMode::TopK(k) = tracking {
            assert!(k > 0, "top-k tracking requires k > 0");
        }
        self.tracking = tracking;
        self
    }

    /// Enables or disables charging CLIC for its per-page metadata by
    /// shrinking the usable cache.
    pub fn with_metadata_charging(mut self, charge: bool) -> Self {
        self.charge_metadata = charge;
        self
    }

    /// Sets the metadata overhead fraction used when charging is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1)`.
    pub fn with_metadata_overhead(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "metadata overhead must be in [0, 1), got {fraction}"
        );
        self.metadata_overhead = fraction;
        self
    }

    /// The usable cache capacity after the optional metadata charge.
    pub fn effective_capacity(&self, nominal_capacity: usize) -> usize {
        if self.charge_metadata {
            let charge = (nominal_capacity as f64 * self.metadata_overhead).ceil() as usize;
            nominal_capacity.saturating_sub(charge).max(1)
        } else {
            nominal_capacity
        }
    }

    /// The outqueue size (in entries) for a cache of `capacity` pages.
    pub fn outqueue_entries(&self, capacity: usize) -> usize {
        (capacity as f64 * self.outqueue_factor).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = ClicConfig::default();
        assert_eq!(c.window, 1_000_000);
        assert_eq!(c.smoothing, 1.0);
        assert_eq!(c.outqueue_factor, 5.0);
        assert_eq!(c.tracking, TrackingMode::Full);
        assert!(c.charge_metadata);
    }

    #[test]
    fn effective_capacity_charges_one_percent() {
        let c = ClicConfig::default();
        assert_eq!(c.effective_capacity(1000), 990);
        assert_eq!(c.effective_capacity(10), 9);
        // Never drops to zero.
        assert_eq!(c.effective_capacity(1), 1);
        let free = ClicConfig::default().with_metadata_charging(false);
        assert_eq!(free.effective_capacity(1000), 1000);
    }

    #[test]
    fn outqueue_entries_scale_with_capacity() {
        let c = ClicConfig::default();
        assert_eq!(c.outqueue_entries(1000), 5000);
        let c = c.with_outqueue_factor(0.0);
        assert_eq!(c.outqueue_entries(1000), 0);
    }

    #[test]
    fn builder_setters_apply() {
        let c = ClicConfig::new()
            .with_window(5)
            .with_smoothing(0.25)
            .with_tracking(TrackingMode::TopK(3))
            .with_metadata_overhead(0.02);
        assert_eq!(c.window, 5);
        assert_eq!(c.smoothing, 0.25);
        assert_eq!(c.tracking, TrackingMode::TopK(3));
        assert_eq!(c.metadata_overhead, 0.02);
        assert_eq!(format!("{}", c.tracking), "top-3");
        assert_eq!(format!("{}", TrackingMode::Full), "full");
    }

    #[test]
    #[should_panic(expected = "smoothing")]
    fn invalid_smoothing_rejected() {
        let _ = ClicConfig::default().with_smoothing(0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = ClicConfig::default().with_window(0);
    }

    #[test]
    #[should_panic(expected = "top-k")]
    fn zero_topk_rejected() {
        let _ = ClicConfig::default().with_tracking(TrackingMode::TopK(0));
    }
}
