//! The CLIC replacement policy (Figure 4 of the paper) together with the
//! on-line hint analysis that feeds it.

use cache_sim::policy::{AccessOutcome, CachePolicy};
use cache_sim::{HintSetId, PageId, Request};

use crate::config::{ClicConfig, TrackingMode};
use crate::page_table::{PageRecord, PageTable};
use crate::priority::PriorityTable;
use crate::tracker::{FullTracker, HintStatsTracker, TopKTracker};

#[derive(Debug)]
enum Tracker {
    Full(FullTracker),
    TopK(TopKTracker),
}

impl Tracker {
    fn as_dyn_mut(&mut self) -> &mut dyn HintStatsTracker {
        match self {
            Tracker::Full(t) => t,
            Tracker::TopK(t) => t,
        }
    }

    fn as_dyn(&self) -> &dyn HintStatsTracker {
        match self {
            Tracker::Full(t) => t,
            Tracker::TopK(t) => t,
        }
    }
}

/// The CLIC storage-server cache policy.
///
/// `Clic` implements [`CachePolicy`], so it can be driven by
/// [`cache_sim::simulate`] exactly like the baseline policies. Internally it
/// follows the paper:
///
/// * per-request statistics tracking over the cache contents plus a bounded
///   outqueue of recently seen but uncached pages (Section 3.1),
/// * windowed priority re-evaluation with exponential smoothing
///   (Section 3.2),
/// * the priority-based replacement rule of Figure 4, implemented on the
///   slab-backed [`PageTable`]: one open-addressed lookup resolves a page to
///   its shared cached/outqueue record, intrusive per-hint lists provide the
///   recency order, and a memoized minimum over per-list priority keys
///   identifies the victim — one hashed page lookup per request in the
///   common case,
/// * optional top-k hint tracking (Section 5).
///
/// The policy also overrides [`CachePolicy::access_batch`] so drivers can
/// replay whole chunks with a single (statically dispatched) call. The
/// batched path additionally warms the page table ahead of itself in small
/// groups — Fibonacci hashes are precomputed and the index buckets and slab
/// slots software-prefetched ([`PageTable::prefetch_group`]) before the
/// group is applied — and remains behaviourally identical to per-request
/// access (prefetching is a pure hint).
///
/// Behaviour (hits, admissions, evictions, bypasses) is contractually
/// bit-identical to the retained pre-refactor implementation,
/// [`crate::ReferenceClic`]; the differential property tests enforce this on
/// random hinted traces.
#[derive(Debug)]
pub struct Clic {
    nominal_capacity: usize,
    capacity: usize,
    config: ClicConfig,
    /// All per-page state: the cached/outqueue slab, the per-hint intrusive
    /// lists, and the min-priority victim index.
    table: PageTable,
    priorities: PriorityTable,
    tracker: Tracker,
    requests_seen: u64,
    /// Eviction-identity log for data-plane drivers; `None` until enabled
    /// via [`CachePolicy::record_evictions`]. Only *cache* evictions are
    /// logged — outqueue drops are metadata-only and never hold a frame.
    evicted_log: Option<Vec<PageId>>,
}

impl Clic {
    /// Creates a CLIC cache with the given nominal capacity (in pages) and
    /// configuration.
    ///
    /// If [`ClicConfig::charge_metadata`] is set (the default, matching the
    /// paper), the usable capacity is reduced by the configured metadata
    /// overhead so that CLIC competes with the baselines at equal total
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, config: ClicConfig) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let effective = config.effective_capacity(capacity);
        let tracker = match config.tracking {
            TrackingMode::Full => Tracker::Full(FullTracker::new()),
            TrackingMode::TopK(k) => Tracker::TopK(TopKTracker::new(k)),
        };
        Clic {
            nominal_capacity: capacity,
            capacity: effective,
            table: PageTable::new(effective, config.outqueue_entries(effective)),
            config,
            priorities: PriorityTable::new(),
            tracker,
            requests_seen: 0,
            evicted_log: None,
        }
    }

    /// Creates a CLIC cache with the paper's default configuration.
    pub fn with_defaults(capacity: usize) -> Self {
        Clic::new(capacity, ClicConfig::default())
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> &ClicConfig {
        &self.config
    }

    /// The usable capacity after the optional metadata charge.
    pub fn effective_capacity(&self) -> usize {
        self.capacity
    }

    /// The current priority `Pr(H)` of a hint set (zero if unknown).
    pub fn priority_of(&self, hint: HintSetId) -> f64 {
        self.priorities.priority(hint)
    }

    /// Number of completed priority-evaluation windows.
    pub fn windows_completed(&self) -> u64 {
        self.priorities.windows_completed()
    }

    /// Number of hint sets currently being tracked for statistics.
    pub fn tracked_hint_sets(&self) -> usize {
        self.tracker.as_dyn().tracked_len()
    }

    /// Number of entries currently held in the outqueue.
    pub fn outqueue_len(&self) -> usize {
        self.table.outqueue_len()
    }

    /// The outqueue contents in FIFO order, for the differential tests.
    #[doc(hidden)]
    pub fn outqueue_snapshot(&self) -> Vec<(PageId, PageRecord)> {
        self.table.outqueue_snapshot()
    }

    /// The remembered record for `page` (cached or outqueue), for the
    /// differential tests.
    #[doc(hidden)]
    pub fn record_of(&self, page: PageId) -> Option<PageRecord> {
        self.table.find(page).map(|(_, record, _)| record)
    }

    /// Overrides the current hint-set priorities, for example with priorities
    /// computed offline by [`crate::analyze_trace`]. Used by the "CLIC with
    /// oracle statistics" ablation, which isolates the quality of the
    /// replacement policy from the quality of the on-line statistics.
    ///
    /// The preloaded priorities stay in effect until the next window
    /// boundary; to keep them for an entire run, configure a window larger
    /// than the trace.
    pub fn preload_priorities<I>(&mut self, priorities: I)
    where
        I: IntoIterator<Item = (HintSetId, f64)>,
    {
        let window: Vec<(HintSetId, crate::stats::HintWindowStats)> = priorities
            .into_iter()
            .filter(|(_, priority)| *priority > 0.0)
            .map(|(hint, priority)| {
                // Encode the desired priority as synthetic statistics with
                // fhit = 1 and D = 1/priority, which Equation 2 maps back to
                // the requested value.
                let distance = (1.0 / priority).max(1.0);
                (
                    hint,
                    crate::stats::HintWindowStats {
                        requests: 1_000_000,
                        read_rereferences: 1_000_000,
                        distance_sum: (distance * 1_000_000.0).min(u64::MAX as f64 / 2.0) as u64,
                    },
                )
            })
            .collect();
        self.priorities.apply_window(&window, 1.0);
        self.rebuild_victim_index();
    }

    /// Total number of requests this instance has processed.
    pub fn requests_seen(&self) -> u64 {
        self.requests_seen
    }

    /// Exports the current hint-set priorities as a snapshot.
    ///
    /// Together with [`Clic::import_priorities`] this is the building block
    /// for *cross-shard priority merging*: a sharded deployment runs one
    /// `Clic` per shard, periodically exports every shard's priorities,
    /// merges them (for example by request-weighted averaging), and imports
    /// the merged snapshot back into each shard so that hint learning is not
    /// fragmented across shards.
    pub fn export_priorities(&self) -> Vec<(HintSetId, f64)> {
        self.priorities.iter().collect()
    }

    /// Replaces the current hint-set priorities with `snapshot` *exactly*
    /// (no smoothing, no window accounting) and rebuilds the victim index.
    ///
    /// Importing a cache's own [`Clic::export_priorities`] snapshot leaves
    /// its behaviour unchanged; see `export_priorities` for the cross-shard
    /// merge protocol this pair implements. Unlike
    /// [`Clic::preload_priorities`], imported priorities survive window
    /// boundaries the same way organically learned ones do — the next
    /// re-evaluation folds them into the usual Equation 3 smoothing.
    pub fn import_priorities<I>(&mut self, snapshot: I)
    where
        I: IntoIterator<Item = (HintSetId, f64)>,
    {
        self.priorities.load_snapshot(snapshot);
        self.rebuild_victim_index();
    }

    /// Returns, for each hint set with at least one cached page, the number
    /// of pages it currently holds in the cache. Useful for diagnostics and
    /// for the cache-composition ablation.
    pub fn cache_composition(&self) -> Vec<(HintSetId, usize)> {
        self.table.composition()
    }

    /// Invalidates `page`: drops it from the cache (or the outqueue) without
    /// remembering it, returning whether it was cached. A delete is not an
    /// access — statistics, windows, and the hint tracker are untouched, and
    /// no ghost entry survives to bias a future re-admission of the same
    /// page id.
    pub fn invalidate(&mut self, page: PageId) -> bool {
        self.table.remove(page) == Some(true)
    }

    /// Rebuilds the per-hint priority keys (and the victim minimum) after
    /// priorities change at a window boundary or snapshot import.
    fn rebuild_victim_index(&mut self) {
        let Clic {
            table, priorities, ..
        } = self;
        table.refresh_keys(|hint| priorities.key(hint));
    }

    /// Finds the eviction victim per Figure 4: the minimum-priority hint set,
    /// breaking ties by the smallest sequence number among those hint sets'
    /// oldest pages. Returns `(priority, page, hint)`. (The access path uses
    /// [`PageTable::find_victim`] directly for its slot handle; this wrapper
    /// serves the unit tests.)
    #[cfg(test)]
    fn find_victim(&self) -> Option<(f64, PageId, HintSetId)> {
        self.table
            .find_victim()
            .map(|victim| (victim.priority, victim.page, victim.hint))
    }

    /// Window boundary: convert the tracker's statistics into new priorities
    /// (Equations 2 and 3) and rebuild the victim index.
    fn end_window(&mut self) {
        let window = self.tracker.as_dyn_mut().end_window();
        self.priorities.apply_window(&window, self.config.smoothing);
        self.rebuild_victim_index();
    }

    /// The per-request pipeline shared by [`CachePolicy::access`] and
    /// [`CachePolicy::access_batch`] (statically dispatched from the batch
    /// loop).
    fn access_one(&mut self, req: &Request, seq: u64) -> AccessOutcome {
        // One hashed lookup resolves the page to its record wherever it
        // lives (cache or outqueue); everything below reuses it.
        let found = self.table.find(req.page);

        // 1. On-line hint analysis (Section 3.1): detect read re-references,
        // then count the request itself.
        if req.is_read() {
            if let Some((_, prev, _)) = found {
                let distance = seq.saturating_sub(prev.seq);
                self.tracker
                    .as_dyn_mut()
                    .record_read_rereference(prev.hint, distance);
            }
        }
        self.tracker.as_dyn_mut().record_request(req.hint);

        // 2. Cache management per Figure 4.
        let record = PageRecord {
            seq,
            hint: req.hint,
        };
        let outcome = match found {
            Some((slot, _, true)) => {
                // Lines 23-25: refresh seq(p) and H(p); the most recent
                // request always determines the page's caching priority.
                let Clic {
                    table, priorities, ..
                } = self;
                table.record_hit(slot, seq, req.hint, || priorities.key(req.hint));
                AccessOutcome::hit()
            }
            _ if self.table.cached_len() < self.capacity => {
                // Lines 2-5: the cache has room. Nothing mutated since the
                // lookup, so the found outqueue slot (if any) is re-used
                // without a second probe.
                let slot = found.map(|(slot, ..)| slot);
                let Clic {
                    table, priorities, ..
                } = self;
                table.admit_resolved(slot, req.page, record, || priorities.key(req.hint));
                AccessOutcome::miss(0)
            }
            _ => {
                // Lines 6-22: full cache; compare priorities.
                let new_priority = self.priorities.priority(req.hint);
                match self.table.find_victim() {
                    Some(victim) if new_priority > victim.priority => {
                        if let Some(log) = self.evicted_log.as_mut() {
                            log.push(victim.page);
                        }
                        self.table.evict_slot_to_outqueue(victim.slot);
                        // The eviction may have dropped the requested page's
                        // own outqueue slot (outqueue overflow), so this
                        // path must re-probe rather than trust `found`.
                        let Clic {
                            table, priorities, ..
                        } = self;
                        table.admit(req.page, record, || priorities.key(req.hint));
                        AccessOutcome::miss(1)
                    }
                    _ => {
                        // Lines 19-22: do not cache p; remember it in the
                        // outqueue instead (slot re-used, no second probe:
                        // find_victim does not mutate).
                        let slot = found.map(|(slot, ..)| slot);
                        self.table.outqueue_insert_resolved(slot, req.page, record);
                        AccessOutcome::bypass()
                    }
                }
            }
        };

        // 3. Window accounting.
        self.requests_seen += 1;
        if self.requests_seen.is_multiple_of(self.config.window) {
            self.end_window();
        }
        outcome
    }
}

impl CachePolicy for Clic {
    fn name(&self) -> String {
        match self.config.tracking {
            TrackingMode::Full => "CLIC".to_string(),
            TrackingMode::TopK(k) => format!("CLIC(k={k})"),
        }
    }

    // The nominal capacity is deliberate: the policy competes at the size it
    // was configured with; the metadata charge is an internal reduction.
    #[allow(clippy::misnamed_getters)]
    fn capacity(&self) -> usize {
        self.nominal_capacity
    }

    fn access(&mut self, req: &Request, seq: u64) -> AccessOutcome {
        self.access_one(req, seq)
    }

    fn record_evictions(&mut self, enabled: bool) -> bool {
        if enabled {
            self.evicted_log.get_or_insert_with(Vec::new);
        } else {
            self.evicted_log = None;
        }
        true
    }

    fn drain_evictions(&mut self, out: &mut Vec<PageId>) {
        if let Some(log) = self.evicted_log.as_mut() {
            out.append(log);
        }
    }

    fn access_batch(
        &mut self,
        reqs: &[Request],
        first_seq: u64,
        outcomes: &mut Vec<AccessOutcome>,
    ) {
        // Two-pass group structure: for each small group of requests,
        // precompute the Fibonacci hashes and software-prefetch the index
        // buckets and slab slots (PageTable::prefetch_group), then apply the
        // requests. Prefetching is a pure hint, so outcomes stay identical
        // to per-request access; the batched-vs-sequential unit test and the
        // differential suite against ReferenceClic both run over this path.
        const PREFETCH_GROUP: usize = 16;
        let mut pages = [PageId(0); PREFETCH_GROUP];
        outcomes.reserve(reqs.len());
        let mut seq = first_seq;
        for group in reqs.chunks(PREFETCH_GROUP) {
            for (page, req) in pages.iter_mut().zip(group) {
                *page = req.page;
            }
            self.table.prefetch_group(&pages[..group.len()]);
            for req in group {
                outcomes.push(self.access_one(req, seq));
                seq += 1;
            }
        }
    }

    fn contains(&self, page: PageId) -> bool {
        self.table.contains(page)
    }

    fn len(&self) -> usize {
        self.table.cached_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{simulate, AccessKind, ClientId, TraceBuilder};

    fn read(page: u64, hint: HintSetId) -> Request {
        Request::read(ClientId(0), PageId(page), hint)
    }

    fn write(page: u64, hint: HintSetId) -> Request {
        Request::write(ClientId(0), PageId(page), None, hint)
    }

    fn small_config(window: u64) -> ClicConfig {
        ClicConfig::default()
            .with_window(window)
            .with_metadata_charging(false)
    }

    #[test]
    fn fills_cache_before_applying_priorities() {
        let mut clic = Clic::new(2, small_config(1000));
        let h = HintSetId(0);
        assert!(!clic.access(&read(1, h), 0).hit);
        assert!(!clic.access(&read(2, h), 1).hit);
        assert_eq!(clic.len(), 2);
        assert!(clic.access(&read(1, h), 2).hit);
    }

    #[test]
    fn unknown_priorities_lead_to_bypass_when_full() {
        // All hint sets start at priority zero; a full cache therefore
        // bypasses new pages (Pr(H) > m is false when both are zero).
        let mut clic = Clic::new(2, small_config(1_000_000));
        let h = HintSetId(0);
        clic.access(&read(1, h), 0);
        clic.access(&read(2, h), 1);
        let out = clic.access(&read(3, h), 2);
        assert!(out.bypassed);
        assert!(!clic.contains(PageId(3)));
        assert!(clic.contains(PageId(1)));
        assert_eq!(clic.outqueue_len(), 1);
    }

    #[test]
    fn learns_to_prefer_rereferenced_hint_sets() {
        // Hint A pages are re-read shortly after being written; hint B pages
        // never are. After one window CLIC must prioritize hint A.
        let config = small_config(200);
        let mut clic = Clic::new(8, config);
        let hint_a = HintSetId(1);
        let hint_b = HintSetId(2);
        let mut seq = 0u64;
        for round in 0..300u64 {
            let a_page = 100 + (round % 20);
            let b_page = 10_000 + round;
            clic.access(&write(a_page, hint_a), seq);
            seq += 1;
            clic.access(&write(b_page, hint_b), seq);
            seq += 1;
            clic.access(&read(a_page, hint_a), seq);
            seq += 1;
        }
        assert!(clic.windows_completed() >= 1);
        assert!(
            clic.priority_of(hint_a) > clic.priority_of(hint_b),
            "hint A ({}) must outrank hint B ({})",
            clic.priority_of(hint_a),
            clic.priority_of(hint_b)
        );
        // The cache should now be dominated by hint-A pages.
        let a_cached = (0..20u64)
            .filter(|i| clic.contains(PageId(100 + i)))
            .count();
        assert!(
            a_cached >= 6,
            "expected hint-A pages to fill the cache, got {a_cached}"
        );
    }

    #[test]
    fn eviction_log_reports_exactly_the_evicted_pages() {
        // Hot pages earn a high priority; once the cache is full, each new
        // hot page evicts the cold resident with the lowest priority. The
        // log must name exactly the pages that left the cache, in order.
        let config = small_config(100);
        let mut clic = Clic::new(4, config);
        assert!(clic.record_evictions(true));
        let hot = HintSetId(1);
        let cold = HintSetId(2);
        let mut seq = 0u64;
        let mut admissions = 0i64;
        let mut evictions_reported = 0i64;
        let mut step = |clic: &mut Clic, req: &Request, seq: u64| {
            let out = clic.access(req, seq);
            if !out.hit && !out.bypassed {
                admissions += 1;
            }
            evictions_reported += i64::from(out.evicted);
        };
        for round in 0..200u64 {
            let hot_page = 100 + (round % 3);
            step(&mut clic, &write(hot_page, hot), seq);
            seq += 1;
            step(&mut clic, &read(hot_page, hot), seq);
            seq += 1;
            step(&mut clic, &read(10_000 + round, cold), seq);
            seq += 1;
        }
        let mut evicted = Vec::new();
        clic.drain_evictions(&mut evicted);
        assert!(evictions_reported > 0, "the workload must force evictions");
        assert_eq!(
            evicted.len() as i64,
            evictions_reported,
            "the log must name exactly as many pages as the outcomes counted"
        );
        // Admissions that were not evicted are still cached, and every
        // logged page has really left the cache.
        assert_eq!(admissions - evictions_reported, clic.len() as i64);
        for page in &evicted {
            assert!(
                !clic.contains(*page),
                "logged page {page:?} is still cached"
            );
        }
        // A second drain is empty; disabling stops the recording.
        evicted.clear();
        clic.drain_evictions(&mut evicted);
        assert!(evicted.is_empty());
        clic.record_evictions(false);
        for round in 0..50u64 {
            clic.access(&read(20_000 + round, cold), seq);
            seq += 1;
        }
        clic.drain_evictions(&mut evicted);
        assert!(evicted.is_empty());
    }

    #[test]
    fn end_to_end_beats_lru_when_hints_are_informative() {
        use cache_sim::policies::Lru;

        // Build a trace where the useful signal is entirely in the hint set:
        // "loop" pages are revisited with a reuse distance larger than the
        // cache, while "scan" pages are never revisited. LRU cannot tell them
        // apart; CLIC can.
        let mut b = TraceBuilder::new();
        let client = b.add_client("db", &[("class", 2)]);
        let loop_hint = b.intern_hints(client, &[0]);
        let scan_hint = b.intern_hints(client, &[1]);
        let loop_pages = 64u64;
        for round in 0..2_000u64 {
            let lp = round % loop_pages;
            b.push(client, lp, AccessKind::Read, None, loop_hint);
            for s in 0..3u64 {
                b.push(
                    client,
                    1_000_000 + round * 3 + s,
                    AccessKind::Read,
                    None,
                    scan_hint,
                );
            }
        }
        let trace = b.build();

        let mut clic = Clic::new(48, small_config(2_000));
        let mut lru = Lru::new(48);
        let clic_res = simulate(&mut clic, &trace);
        let lru_res = simulate(&mut lru, &trace);
        assert!(
            clic_res.read_hit_ratio() > lru_res.read_hit_ratio() + 0.1,
            "CLIC {:.3} should clearly beat LRU {:.3}",
            clic_res.read_hit_ratio(),
            lru_res.read_hit_ratio()
        );
    }

    #[test]
    fn topk_mode_matches_full_mode_with_few_hint_sets() {
        // With only a handful of hint sets, tracking the top 8 must behave
        // like full tracking.
        let mut b = TraceBuilder::new();
        let client = b.add_client("db", &[("class", 4)]);
        let hints: Vec<HintSetId> = (0..4).map(|v| b.intern_hints(client, &[v])).collect();
        for round in 0..3_000u64 {
            let hint = hints[(round % 4) as usize];
            let page = (round % 4) * 1000 + (round % 37);
            b.push(client, page, AccessKind::Read, None, hint);
        }
        let trace = b.build();

        let full = {
            let mut c = Clic::new(32, small_config(500));
            simulate(&mut c, &trace).read_hit_ratio()
        };
        let topk = {
            let cfg = small_config(500).with_tracking(TrackingMode::TopK(8));
            let mut c = Clic::new(32, cfg);
            simulate(&mut c, &trace).read_hit_ratio()
        };
        assert!(
            (full - topk).abs() < 0.02,
            "full {full:.3} and top-k {topk:.3} should agree when k covers all hint sets"
        );
    }

    #[test]
    fn victim_is_oldest_page_of_lowest_priority_hint_set() {
        let mut clic = Clic::new(3, small_config(10));
        let low = HintSetId(1);
        let high = HintSetId(2);
        let mut seq = 0u64;
        // Teach CLIC that `high` pages are re-read quickly and `low` pages
        // are not: pages 1..3 (low) written then never read; pages 50..52
        // (high) written then read.
        for i in 0..30u64 {
            clic.access(&write(500 + i, low), seq);
            seq += 1;
            clic.access(&write(50 + (i % 3), high), seq);
            seq += 1;
            clic.access(&read(50 + (i % 3), high), seq);
            seq += 1;
        }
        assert!(clic.priority_of(high) > clic.priority_of(low));
        // Now fill the cache with low pages (they were admitted while the
        // cache had room) and check that a high-priority page displaces the
        // *oldest* low page.
        let len_before = clic.len();
        assert_eq!(len_before, 3);
        let victim = clic.find_victim().expect("cache is full");
        let new_page = 999u64;
        let out = clic.access(&write(new_page, high), seq);
        if !out.hit && !out.bypassed {
            assert!(
                !clic.contains(victim.1),
                "the reported victim must be evicted"
            );
            assert!(clic.contains(PageId(new_page)));
        }
    }

    #[test]
    fn metadata_charge_reduces_usable_capacity() {
        let charged = Clic::new(1000, ClicConfig::default());
        assert_eq!(charged.capacity(), 1000);
        assert_eq!(charged.effective_capacity(), 990);
        let free = Clic::new(1000, ClicConfig::default().with_metadata_charging(false));
        assert_eq!(free.effective_capacity(), 1000);
    }

    #[test]
    fn writes_update_page_hint_and_sequence() {
        let mut clic = Clic::new(4, small_config(1000));
        let a = HintSetId(1);
        let b = HintSetId(2);
        clic.access(&read(1, a), 0);
        // A later write with a different hint set re-labels the cached page.
        assert!(clic.access(&write(1, b), 1).hit);
        // The page now lives in hint set b's list; evicting by priority uses b.
        assert_eq!(clic.len(), 1);
        assert!(clic.contains(PageId(1)));
        let victim = clic.find_victim().unwrap();
        assert_eq!(victim.2, b);
    }

    #[test]
    fn clic_is_send() {
        // The server crate moves Clic instances across shard worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<Clic>();
    }

    #[test]
    fn importing_own_priority_snapshot_is_a_noop() {
        let mut clic = Clic::new(8, small_config(100));
        let hint_a = HintSetId(1);
        let hint_b = HintSetId(2);
        let mut seq = 0u64;
        for round in 0..200u64 {
            clic.access(&write(100 + (round % 10), hint_a), seq);
            seq += 1;
            clic.access(&read(100 + (round % 10), hint_a), seq);
            seq += 1;
            clic.access(&write(10_000 + round, hint_b), seq);
            seq += 1;
        }
        assert!(clic.priority_of(hint_a) > 0.0);
        let snapshot = clic.export_priorities();
        let victim_before = clic.find_victim();
        clic.import_priorities(snapshot.clone());
        assert_eq!(clic.find_victim(), victim_before);
        for (hint, priority) in snapshot {
            assert_eq!(clic.priority_of(hint), priority);
        }
        // An imported foreign priority takes effect immediately.
        let foreign = HintSetId(9);
        clic.import_priorities([(foreign, 123.0)]);
        assert_eq!(clic.priority_of(foreign), 123.0);
        assert_eq!(clic.priority_of(hint_a), 0.0);
    }

    #[test]
    fn storage_invariants_hold_under_churn() {
        // Drive a mixed workload (multiple hint sets, evictions, bypasses,
        // window boundaries) and run the page table's full invariant check —
        // including the memoized victim minimum against a fresh scan — after
        // every request.
        let mut clic = Clic::new(6, small_config(50));
        for round in 0..600u64 {
            let hint = HintSetId((round % 4) as u32);
            let page = (round % 3) * 1000 + (round % 17);
            if round % 5 == 0 {
                clic.access(&write(page, hint), round);
            } else {
                clic.access(&read(page, hint), round);
            }
            clic.table.validate();
        }
    }

    #[test]
    fn batched_access_is_identical_to_sequential_access() {
        // The same mixed workload replayed per-request and in ragged batch
        // sizes must produce identical outcomes and identical end state.
        let mut reqs = Vec::new();
        for round in 0..700u64 {
            let hint = HintSetId((round % 3) as u32);
            let page = (round % 4) * 500 + (round % 23);
            if round % 4 == 0 {
                reqs.push(write(page, hint));
            } else {
                reqs.push(read(page, hint));
            }
        }
        let mut sequential = Clic::new(8, small_config(64));
        let mut batched = Clic::new(8, small_config(64));
        let mut expected = Vec::new();
        for (i, req) in reqs.iter().enumerate() {
            expected.push(sequential.access(req, i as u64));
        }
        let mut got = Vec::new();
        let mut first_seq = 0u64;
        for (i, chunk) in reqs.chunks(17).enumerate() {
            let mut outcomes = Vec::new();
            // Ragged sizes: alternate full and split chunks.
            if i % 2 == 0 {
                batched.access_batch(chunk, first_seq, &mut outcomes);
            } else {
                let (a, b) = chunk.split_at(chunk.len() / 2);
                batched.access_batch(a, first_seq, &mut outcomes);
                batched.access_batch(b, first_seq + a.len() as u64, &mut outcomes);
            }
            first_seq += chunk.len() as u64;
            got.extend(outcomes);
        }
        assert_eq!(expected, got);
        assert_eq!(sequential.len(), batched.len());
        assert_eq!(sequential.outqueue_len(), batched.outqueue_len());
        assert_eq!(sequential.windows_completed(), batched.windows_completed());
    }

    #[test]
    fn outqueue_is_bounded_by_config() {
        let cfg = small_config(1_000_000).with_outqueue_factor(2.0);
        let mut clic = Clic::new(4, cfg);
        let h = HintSetId(0);
        for i in 0..100u64 {
            clic.access(&read(i, h), i);
        }
        // Cache holds 4 pages; outqueue is bounded at 2 * 4 = 8 entries.
        assert!(clic.outqueue_len() <= 8);
        assert_eq!(clic.len(), 4);
    }
}
