//! Offline hint-set analysis (the data behind Figure 3 of the paper).
//!
//! Given a complete trace, [`analyze_trace`] computes — with *unbounded*
//! memory, i.e. remembering the most recent request for every page — the
//! exact per-hint-set statistics `N(H)`, `Nr(H)` and `D(H)` over the whole
//! trace, and the resulting caching priority `Pr(H) = fhit(H)/D(H)`.
//!
//! This is the idealized version of what the on-line tracker inside
//! [`crate::Clic`] approximates with its bounded outqueue and windows; the
//! experiments use it to reproduce the priority-versus-frequency scatter plot
//! of Figure 3 and to sanity-check the on-line tracker.

use std::collections::HashMap;

use cache_sim::{HintSetId, PageId, Trace};

use crate::stats::HintWindowStats;

/// Exact whole-trace statistics for one hint set.
#[derive(Debug, Clone, PartialEq)]
pub struct HintSetReport {
    /// The hint set being described.
    pub hint: HintSetId,
    /// Human-readable description (client name plus hint values).
    pub label: String,
    /// `N(H)`: total number of requests carrying this hint set.
    pub requests: u64,
    /// `Nr(H)`: requests that were followed by a read re-reference.
    pub read_rereferences: u64,
    /// `D(H)`: mean read re-reference distance (0 when there were none).
    pub mean_distance: f64,
    /// `fhit(H) = Nr(H)/N(H)`.
    pub read_hit_rate: f64,
    /// `Pr(H) = fhit(H)/D(H)` (0 when there were no read re-references).
    pub priority: f64,
    /// Fraction of all requests in the trace that carried this hint set.
    pub frequency: f64,
}

/// Computes exact per-hint-set statistics over an entire trace.
///
/// Reports are returned sorted by decreasing frequency, ties broken by
/// ascending hint-set id — a *total* order, so the report sequence is
/// reproducible run to run (the accumulation map iterates in a
/// process-random order, which once leaked through the stable sort into the
/// Figure 3 output and tripped the cross-run determinism gate in
/// `scripts/verify.sh --smoke-bench`). Every hint set that appears in the
/// trace gets a report, including those whose priority is zero.
pub fn analyze_trace(trace: &Trace) -> Vec<HintSetReport> {
    let mut per_hint: HashMap<HintSetId, HintWindowStats> = HashMap::new();
    // Most recent request (sequence number and hint set) for every page.
    let mut last_request: HashMap<PageId, (u64, HintSetId)> = HashMap::new();

    for (seq, req) in trace.iter() {
        if req.is_read() {
            if let Some(&(prev_seq, prev_hint)) = last_request.get(&req.page) {
                per_hint
                    .entry(prev_hint)
                    .or_default()
                    .record_read_rereference(seq - prev_seq);
            }
        }
        per_hint.entry(req.hint).or_default().record_request();
        last_request.insert(req.page, (seq, req.hint));
    }

    let total = trace.len().max(1) as f64;
    let mut reports: Vec<HintSetReport> = per_hint
        .into_iter()
        .map(|(hint, stats)| HintSetReport {
            hint,
            label: trace.catalog.describe(hint),
            requests: stats.requests,
            read_rereferences: stats.read_rereferences,
            mean_distance: stats.mean_distance().unwrap_or(0.0),
            read_hit_rate: stats.read_hit_rate(),
            priority: stats.priority(),
            frequency: stats.requests as f64 / total,
        })
        .collect();
    reports.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.hint.cmp(&b.hint)));
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, TraceBuilder, WriteHint};

    #[test]
    fn empty_trace_yields_no_reports() {
        let trace = TraceBuilder::new().build();
        assert!(analyze_trace(&trace).is_empty());
    }

    #[test]
    fn rereferenced_hint_sets_get_positive_priority() {
        let mut b = TraceBuilder::new();
        let c = b.add_client("db", &[("table", 2), ("kind", 2)]);
        // Hint "stock replacement write": written then read again soon.
        let stock_write = b.intern_hints(c, &[0, 1]);
        let stock_read = b.intern_hints(c, &[0, 0]);
        // Hint "orderline read": read once, never again.
        let orderline = b.intern_hints(c, &[1, 0]);
        for i in 0..100u64 {
            b.push(
                c,
                i,
                AccessKind::Write,
                Some(WriteHint::Replacement),
                stock_write,
            );
            b.push(c, 1000 + i, AccessKind::Read, None, orderline);
            b.push(c, i, AccessKind::Read, None, stock_read);
        }
        let trace = b.build();
        let reports = analyze_trace(&trace);
        assert_eq!(reports.len(), 3);

        let find = |hint: HintSetId| reports.iter().find(|r| r.hint == hint).unwrap();
        let sw = find(stock_write);
        let ol = find(orderline);
        // Every stock write is re-read two requests later.
        assert_eq!(sw.read_rereferences, 100);
        assert!((sw.mean_distance - 2.0).abs() < 1e-9);
        assert!((sw.read_hit_rate - 1.0).abs() < 1e-9);
        assert!(sw.priority > 0.0);
        // Orderline pages are never re-read.
        assert_eq!(ol.read_rereferences, 0);
        assert_eq!(ol.priority, 0.0);
        // The replacement-write hint set is the better caching opportunity.
        assert!(sw.priority > ol.priority);
        // Frequencies sum to 1.
        let total: f64 = reports.iter().map(|r| r.frequency).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Labels are human readable.
        assert!(sw.label.contains("table=0"));
    }

    #[test]
    fn write_rereferences_are_not_counted() {
        let mut b = TraceBuilder::new();
        let c = b.add_client("db", &[("x", 1)]);
        let h = b.intern_hints(c, &[0]);
        // Page 1: read then *written* -> the original request gets no credit.
        b.push(c, 1, AccessKind::Read, None, h);
        b.push(c, 1, AccessKind::Write, None, h);
        let trace = b.build();
        let reports = analyze_trace(&trace);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].read_rereferences, 0);
        assert_eq!(reports[0].priority, 0.0);
    }

    #[test]
    fn reports_are_sorted_by_frequency() {
        let mut b = TraceBuilder::new();
        let c = b.add_client("db", &[("x", 3)]);
        let h0 = b.intern_hints(c, &[0]);
        let h1 = b.intern_hints(c, &[1]);
        for i in 0..10u64 {
            b.push(c, i, AccessKind::Read, None, h0);
        }
        b.push(c, 100, AccessKind::Read, None, h1);
        let trace = b.build();
        let reports = analyze_trace(&trace);
        assert_eq!(reports[0].hint, h0);
        assert_eq!(reports[0].requests, 10);
        assert_eq!(reports[1].hint, h1);
    }
}
