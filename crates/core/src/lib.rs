//! CLIC: CLient-Informed Caching for storage servers.
//!
//! This crate implements the contribution of *CLIC: CLient-Informed Caching
//! for Storage Servers* (Liu, Aboulnaga, Salem & Li, FAST '09): a **generic,
//! hint-based replacement policy** for second-tier (storage-server) caches.
//!
//! Storage clients attach an opaque *hint set* to every I/O request. CLIC
//! does not know what the hints mean; instead it *learns* which hint sets
//! identify good caching opportunities:
//!
//! 1. For every hint set `H` it tracks `N(H)` (requests carrying `H`),
//!    `Nr(H)` (those requests that were followed by a *read* re-reference of
//!    the same page), and `D(H)` (the mean re-reference distance), using the
//!    cache contents plus a bounded [`OutQueue`] of recently seen but
//!    uncached pages (Section 3.1 of the paper).
//! 2. Every `W` requests it converts the window's statistics into a caching
//!    priority `Pr(H) = fhit(H) / D(H)` with `fhit(H) = Nr(H)/N(H)`, smoothed
//!    across windows by `Pr_i = r·P̂r_i + (1−r)·Pr_{i−1}` (Section 3.2).
//! 3. Its replacement policy admits a page only if its hint set's priority
//!    exceeds the minimum priority of any cached page, evicting the oldest
//!    page of the lowest-priority hint set (Figure 4).
//! 4. Optionally, hint statistics are tracked only for the top-`k` most
//!    frequent hint sets using an adapted Space-Saving summary (Section 5),
//!    bounding the tracking state regardless of how many distinct hint sets
//!    the clients emit.
//!
//! The main entry point is [`Clic`], which implements the
//! [`cache_sim::CachePolicy`] trait and can therefore be driven by the
//! [`cache_sim`] simulation harness alongside the baseline policies. Its
//! per-page state lives in the slab-backed [`page_table::PageTable`] (one
//! open-addressed lookup per request, intrusive per-hint lists, a shared
//! cached/outqueue slab); the retained pre-refactor implementation,
//! [`ReferenceClic`], serves as a differential-testing oracle and
//! performance baseline.
//!
//! # Example
//!
//! ```
//! use cache_sim::{simulate, AccessKind, TraceBuilder};
//! use clic_core::{Clic, ClicConfig};
//!
//! // A toy trace: pages written with hint value 1 are re-read soon, pages
//! // with hint value 0 never are. CLIC should learn to cache the former.
//! let mut b = TraceBuilder::new();
//! let client = b.add_client("toy", &[("kind", 2)]);
//! let cold = b.intern_hints(client, &[0]);
//! let hot = b.intern_hints(client, &[1]);
//! for i in 0..10_000u64 {
//!     b.push(client, i, AccessKind::Write, None, cold);
//!     b.push(client, 1_000_000 + (i % 50), AccessKind::Write, None, hot);
//!     b.push(client, 1_000_000 + (i % 50), AccessKind::Read, None, hot);
//! }
//! let trace = b.build();
//!
//! let config = ClicConfig::default().with_window(1_000);
//! let mut clic = Clic::new(64, config);
//! let result = simulate(&mut clic, &trace);
//! assert!(result.read_hit_ratio() > 0.9);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod config;
pub mod generalize;
pub mod outqueue;
pub mod page_table;
pub mod policy;
pub mod priority;
pub mod reference;
pub mod stats;
pub mod tracker;

pub use analysis::{analyze_trace, HintSetReport};
pub use config::{suggested_window, ClicConfig, TrackingMode};
pub use generalize::{
    train_grouping, train_grouping_from_prefix, HintDecisionTree, HintSetGrouping,
};
pub use outqueue::OutQueue;
pub use page_table::{PageRecord, PageTable};
pub use policy::Clic;
pub use priority::PriorityTable;
pub use reference::ReferenceClic;
pub use stats::HintWindowStats;
pub use tracker::{FullTracker, HintStatsTracker, TopKTracker};
