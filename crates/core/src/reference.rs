//! The retained pre-refactor CLIC implementation, kept as a differential
//! oracle and performance baseline.
//!
//! [`ReferenceClic`] is the policy exactly as it was implemented before the
//! slab/intrusive-list storage layer landed: a `HashMap` of cached pages, one
//! [`OrderedPageSet`] per hint set, a separate [`OutQueue`] map, and a
//! `BTreeSet` victim index with a memoized minimum. Its per-page containers
//! are deliberately left on the original (SipHash) standard-library maps so
//! that:
//!
//! * the differential property tests can replay arbitrary hinted traces
//!   through both implementations and assert *identical* hit/miss/eviction/
//!   bypass sequences (the refactor's bit-exactness contract), and
//! * the `access_hotpath` micro-benchmark can report the slab layout's
//!   speed-up against the real pre-refactor baseline rather than against a
//!   straw man. (One shared component did get faster in the same PR: the
//!   [`PriorityTable`] both implementations use moved to FxHash, so the
//!   baseline is, if anything, slightly *faster* than the true pre-refactor
//!   code and the reported speed-ups are conservative.)
//!
//! Keep this module boring: correctness first, no optimizations. Any change
//! to observable policy behaviour must be made to [`crate::Clic`] and here in
//! lock-step, or the differential suite will fail.

use std::collections::{BTreeSet, HashMap};

use cache_sim::policies::util::OrderedPageSet;
use cache_sim::policy::{AccessOutcome, CachePolicy};
use cache_sim::{HintSetId, PageId, Request};

use crate::config::{ClicConfig, TrackingMode};
use crate::outqueue::OutQueue;
use crate::page_table::PageRecord;
use crate::priority::{priority_key, PriorityTable};
use crate::tracker::{FullTracker, HintStatsTracker, TopKTracker};

#[derive(Debug)]
enum Tracker {
    Full(FullTracker),
    TopK(TopKTracker),
}

impl Tracker {
    fn as_dyn_mut(&mut self) -> &mut dyn HintStatsTracker {
        match self {
            Tracker::Full(t) => t,
            Tracker::TopK(t) => t,
        }
    }

    fn as_dyn(&self) -> &dyn HintStatsTracker {
        match self {
            Tracker::Full(t) => t,
            Tracker::TopK(t) => t,
        }
    }
}

/// The pre-refactor CLIC policy (see the module documentation). Behaviour is
/// contractually identical to [`crate::Clic`]; only the data layout differs.
#[derive(Debug)]
pub struct ReferenceClic {
    nominal_capacity: usize,
    capacity: usize,
    config: ClicConfig,
    /// Metadata (most recent sequence number and hint set) for cached pages.
    cached: HashMap<PageId, PageRecord>,
    /// Cached pages grouped by their current hint set, each list ordered by
    /// ascending sequence number (front = oldest).
    lists: HashMap<HintSetId, OrderedPageSet>,
    /// `(priority key, hint set)` for every hint set with at least one cached
    /// page; the first element identifies the lowest-priority hint set.
    victim_index: BTreeSet<(u64, HintSetId)>,
    /// Memoized minimum priority key of `victim_index`, `None` when the cache
    /// is empty.
    min_key: Option<u64>,
    /// The hint sets whose priority key equals `min_key`.
    min_hints: Vec<HintSetId>,
    outqueue: OutQueue,
    priorities: PriorityTable,
    tracker: Tracker,
    requests_seen: u64,
}

impl ReferenceClic {
    /// Creates a reference CLIC cache with the given nominal capacity and
    /// configuration (same semantics as [`crate::Clic::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, config: ClicConfig) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        let effective = config.effective_capacity(capacity);
        let tracker = match config.tracking {
            TrackingMode::Full => Tracker::Full(FullTracker::new()),
            TrackingMode::TopK(k) => Tracker::TopK(TopKTracker::new(k)),
        };
        ReferenceClic {
            nominal_capacity: capacity,
            capacity: effective,
            outqueue: OutQueue::new(config.outqueue_entries(effective)),
            config,
            cached: HashMap::with_capacity(effective),
            lists: HashMap::new(),
            victim_index: BTreeSet::new(),
            min_key: None,
            min_hints: Vec::new(),
            priorities: PriorityTable::new(),
            tracker,
            requests_seen: 0,
        }
    }

    /// Creates a reference CLIC cache with the paper's default configuration.
    pub fn with_defaults(capacity: usize) -> Self {
        ReferenceClic::new(capacity, ClicConfig::default())
    }

    /// The usable capacity after the optional metadata charge.
    pub fn effective_capacity(&self) -> usize {
        self.capacity
    }

    /// The current priority `Pr(H)` of a hint set (zero if unknown).
    pub fn priority_of(&self, hint: HintSetId) -> f64 {
        self.priorities.priority(hint)
    }

    /// Number of completed priority-evaluation windows.
    pub fn windows_completed(&self) -> u64 {
        self.priorities.windows_completed()
    }

    /// Number of hint sets currently being tracked for statistics.
    pub fn tracked_hint_sets(&self) -> usize {
        self.tracker.as_dyn().tracked_len()
    }

    /// Number of entries currently held in the outqueue.
    pub fn outqueue_len(&self) -> usize {
        self.outqueue.len()
    }

    /// The outqueue contents in FIFO order, for the differential tests.
    #[doc(hidden)]
    pub fn outqueue_snapshot(&self) -> Vec<(PageId, PageRecord)> {
        self.outqueue.snapshot()
    }

    /// The remembered record for `page` (cached or outqueue), for the
    /// differential tests.
    #[doc(hidden)]
    pub fn record_of(&self, page: PageId) -> Option<PageRecord> {
        self.cached
            .get(&page)
            .copied()
            .or_else(|| self.outqueue.get(page))
    }

    /// Replaces the current hint-set priorities exactly and rebuilds the
    /// victim index (same semantics as [`crate::Clic::import_priorities`]).
    pub fn import_priorities<I>(&mut self, snapshot: I)
    where
        I: IntoIterator<Item = (HintSetId, f64)>,
    {
        self.priorities.load_snapshot(snapshot);
        self.rebuild_victim_index();
    }

    /// Exports the current hint-set priorities as a snapshot.
    pub fn export_priorities(&self) -> Vec<(HintSetId, f64)> {
        self.priorities.iter().collect()
    }

    fn list_push(&mut self, hint: HintSetId, page: PageId) {
        let list = self.lists.entry(hint).or_default();
        let was_empty = list.is_empty();
        list.push_back(page);
        if was_empty {
            let key = priority_key(self.priorities.priority(hint));
            self.victim_index.insert((key, hint));
            match self.min_key {
                Some(min) if key > min => {}
                Some(min) if key == min => self.min_hints.push(hint),
                _ => {
                    self.min_key = Some(key);
                    self.min_hints.clear();
                    self.min_hints.push(hint);
                }
            }
        }
    }

    fn list_remove(&mut self, hint: HintSetId, page: PageId) {
        if let Some(list) = self.lists.get_mut(&hint) {
            list.remove(page);
            if list.is_empty() {
                let key = priority_key(self.priorities.priority(hint));
                self.victim_index.remove(&(key, hint));
                self.lists.remove(&hint);
                if self.min_key == Some(key) {
                    self.min_hints.retain(|&h| h != hint);
                    if self.min_hints.is_empty() {
                        self.rebuild_min_hints();
                    }
                }
            }
        }
    }

    fn rebuild_victim_index(&mut self) {
        self.victim_index = self
            .lists
            .keys()
            .map(|&hint| (priority_key(self.priorities.priority(hint)), hint))
            .collect();
        self.rebuild_min_hints();
    }

    fn rebuild_min_hints(&mut self) {
        self.min_hints.clear();
        self.min_key = self.victim_index.iter().next().map(|&(key, _)| key);
        if let Some(min_key) = self.min_key {
            self.min_hints.extend(
                self.victim_index
                    .range((min_key, HintSetId(0))..=(min_key, HintSetId(u32::MAX)))
                    .map(|&(_, hint)| hint),
            );
        }
    }

    fn find_victim(&self) -> Option<(f64, PageId, HintSetId)> {
        let min_key = self.min_key?;
        let mut best: Option<(u64, PageId, HintSetId)> = None;
        for &hint in &self.min_hints {
            let list = self.lists.get(&hint).expect("indexed hint set has a list");
            let page = list.front().expect("indexed list is non-empty");
            let seq = self
                .cached
                .get(&page)
                .expect("cached page has metadata")
                .seq;
            match best {
                Some((best_seq, _, _)) if best_seq <= seq => {}
                _ => best = Some((seq, page, hint)),
            }
        }
        best.map(|(_, page, hint)| (f64::from_bits(min_key), page, hint))
    }

    fn track_statistics(&mut self, req: &Request, seq: u64) {
        if req.is_read() {
            let previous = self
                .cached
                .get(&req.page)
                .copied()
                .or_else(|| self.outqueue.get(req.page));
            if let Some(prev) = previous {
                let distance = seq.saturating_sub(prev.seq);
                self.tracker
                    .as_dyn_mut()
                    .record_read_rereference(prev.hint, distance);
            }
        }
        self.tracker.as_dyn_mut().record_request(req.hint);
    }

    fn end_window(&mut self) {
        let window = self.tracker.as_dyn_mut().end_window();
        self.priorities.apply_window(&window, self.config.smoothing);
        self.rebuild_victim_index();
    }

    fn admit(&mut self, page: PageId, record: PageRecord) {
        self.outqueue.remove(page);
        self.cached.insert(page, record);
        self.list_push(record.hint, page);
    }

    fn evict_to_outqueue(&mut self, page: PageId, hint: HintSetId) {
        if let Some(record) = self.cached.remove(&page) {
            self.list_remove(hint, page);
            self.outqueue.insert(page, record);
        }
    }
}

impl CachePolicy for ReferenceClic {
    fn name(&self) -> String {
        match self.config.tracking {
            TrackingMode::Full => "CLIC-ref".to_string(),
            TrackingMode::TopK(k) => format!("CLIC-ref(k={k})"),
        }
    }

    // Same rationale as `Clic::capacity`: report the nominal size.
    #[allow(clippy::misnamed_getters)]
    fn capacity(&self) -> usize {
        self.nominal_capacity
    }

    fn access(&mut self, req: &Request, seq: u64) -> AccessOutcome {
        // 1. On-line hint analysis.
        self.track_statistics(req, seq);

        // 2. Cache management per Figure 4.
        let record = PageRecord {
            seq,
            hint: req.hint,
        };
        let outcome = if let Some(old) = self.cached.get(&req.page).copied() {
            if old.hint == req.hint {
                if let Some(list) = self.lists.get_mut(&req.hint) {
                    list.touch(req.page);
                }
            } else {
                self.list_remove(old.hint, req.page);
                self.list_push(req.hint, req.page);
            }
            self.cached.insert(req.page, record);
            AccessOutcome::hit()
        } else if self.cached.len() < self.capacity {
            self.admit(req.page, record);
            AccessOutcome::miss(0)
        } else {
            let new_priority = self.priorities.priority(req.hint);
            match self.find_victim() {
                Some((min_priority, victim_page, victim_hint)) if new_priority > min_priority => {
                    self.evict_to_outqueue(victim_page, victim_hint);
                    self.admit(req.page, record);
                    AccessOutcome::miss(1)
                }
                _ => {
                    self.outqueue.insert(req.page, record);
                    AccessOutcome::bypass()
                }
            }
        };

        // 3. Window accounting.
        self.requests_seen += 1;
        if self.requests_seen.is_multiple_of(self.config.window) {
            self.end_window();
        }
        outcome
    }

    fn contains(&self, page: PageId) -> bool {
        self.cached.contains_key(&page)
    }

    fn len(&self) -> usize {
        self.cached.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::ClientId;

    fn read(page: u64, hint: HintSetId) -> Request {
        Request::read(ClientId(0), PageId(page), hint)
    }

    #[test]
    fn reference_behaves_like_a_cache() {
        let mut clic = ReferenceClic::new(
            2,
            ClicConfig::default()
                .with_window(1000)
                .with_metadata_charging(false),
        );
        let h = HintSetId(0);
        assert!(!clic.access(&read(1, h), 0).hit);
        assert!(!clic.access(&read(2, h), 1).hit);
        assert!(clic.access(&read(1, h), 2).hit);
        // Full cache + unknown priorities: bypass.
        let out = clic.access(&read(3, h), 3);
        assert!(out.bypassed);
        assert_eq!(clic.outqueue_len(), 1);
        assert_eq!(clic.len(), 2);
        assert_eq!(clic.effective_capacity(), 2);
        assert!(clic.name().contains("ref"));
    }
}
