//! Per-hint-set window statistics and the benefit/cost priority formula.

/// The statistics CLIC accumulates for one hint set over one request window
/// (Section 3 of the paper): `N(H)`, `Nr(H)`, and the data needed to compute
/// the mean read re-reference distance `D(H)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HintWindowStats {
    /// `N(H)`: number of requests observed with this hint set.
    pub requests: u64,
    /// `Nr(H)`: number of those requests that were followed by a *read*
    /// re-reference of the same page.
    pub read_rereferences: u64,
    /// Sum of the observed read re-reference distances (in requests), used
    /// to compute the mean distance `D(H)`.
    pub distance_sum: u64,
}

impl HintWindowStats {
    /// An all-zero record.
    pub fn new() -> Self {
        HintWindowStats::default()
    }

    /// Records one request carrying this hint set (increments `N(H)`).
    pub fn record_request(&mut self) {
        self.requests += 1;
    }

    /// Records a read re-reference at the given distance (increments `Nr(H)`
    /// and accumulates the distance).
    pub fn record_read_rereference(&mut self, distance: u64) {
        self.read_rereferences += 1;
        self.distance_sum += distance;
    }

    /// `fhit(H) = Nr(H) / N(H)`: the expected benefit of caching pages
    /// requested with this hint set. Clamped to `[0, 1]` to guard against the
    /// top-k tracker's underestimated `N(H)`.
    pub fn read_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.read_rereferences as f64 / self.requests as f64).min(1.0)
        }
    }

    /// `D(H)`: the mean read re-reference distance, or `None` if no read
    /// re-reference has been observed.
    pub fn mean_distance(&self) -> Option<f64> {
        if self.read_rereferences == 0 {
            None
        } else {
            Some(self.distance_sum as f64 / self.read_rereferences as f64)
        }
    }

    /// `P̂r(H) = fhit(H) / D(H)` (Equation 2): the benefit/cost ratio used as
    /// the hint set's caching priority. Zero when no read re-reference has
    /// been observed (no evidence of benefit).
    pub fn priority(&self) -> f64 {
        match self.mean_distance() {
            Some(d) if d > 0.0 => self.read_hit_rate() / d,
            // A distance of zero cannot occur for a genuine re-reference
            // (the re-referencing request has a larger sequence number), but
            // guard against it to keep the priority finite.
            Some(_) => self.read_hit_rate(),
            None => 0.0,
        }
    }

    /// Merges another window record into this one (used by the offline
    /// analysis when aggregating across windows).
    pub fn merge(&mut self, other: &HintWindowStats) {
        self.requests += other.requests;
        self.read_rereferences += other.read_rereferences;
        self.distance_sum += other.distance_sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_have_zero_priority() {
        let s = HintWindowStats::new();
        assert_eq!(s.read_hit_rate(), 0.0);
        assert_eq!(s.mean_distance(), None);
        assert_eq!(s.priority(), 0.0);
    }

    #[test]
    fn priority_is_benefit_over_cost() {
        let mut s = HintWindowStats::new();
        for _ in 0..10 {
            s.record_request();
        }
        // 5 of the 10 requests re-referenced at distance 100.
        for _ in 0..5 {
            s.record_read_rereference(100);
        }
        assert!((s.read_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_distance(), Some(100.0));
        assert!((s.priority() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn quick_rereferences_outrank_slow_ones() {
        let mut fast = HintWindowStats::new();
        let mut slow = HintWindowStats::new();
        for _ in 0..10 {
            fast.record_request();
            slow.record_request();
        }
        for _ in 0..5 {
            fast.record_read_rereference(10);
            slow.record_read_rereference(10_000);
        }
        assert!(fast.priority() > slow.priority());
    }

    #[test]
    fn frequent_rereferences_outrank_rare_ones() {
        let mut often = HintWindowStats::new();
        let mut rarely = HintWindowStats::new();
        for _ in 0..100 {
            often.record_request();
            rarely.record_request();
        }
        for _ in 0..80 {
            often.record_read_rereference(50);
        }
        rarely.record_read_rereference(50);
        assert!(often.priority() > rarely.priority());
    }

    #[test]
    fn hit_rate_is_clamped_when_n_is_underestimated() {
        // The top-k tracker can underestimate N(H); fhit must stay <= 1.
        let s = HintWindowStats {
            requests: 3,
            read_rereferences: 7,
            distance_sum: 70,
        };
        assert_eq!(s.read_hit_rate(), 1.0);
        assert!(s.priority() <= 1.0 / 10.0 + 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = HintWindowStats {
            requests: 5,
            read_rereferences: 2,
            distance_sum: 30,
        };
        let b = HintWindowStats {
            requests: 3,
            read_rereferences: 1,
            distance_sum: 10,
        };
        a.merge(&b);
        assert_eq!(a.requests, 8);
        assert_eq!(a.read_rereferences, 3);
        assert_eq!(a.distance_sum, 40);
    }
}
