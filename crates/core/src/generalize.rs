//! Hint-set generalization with decision trees (the paper's proposed
//! extension).
//!
//! Sections 6.3 and 8 of the paper observe that when clients emit many
//! low-value hint types, the number of distinct hint sets explodes and
//! CLIC's per-hint-set statistics get diluted. The remedy they propose as
//! future work is to *group related hint sets together* — using decision
//! trees — and track re-reference statistics per group instead of per
//! individual hint set.
//!
//! This module implements that extension:
//!
//! * [`HintDecisionTree`] — a weighted regression tree over the categorical
//!   hint attributes. Leaves are hint-set *groups*; splits are chosen
//!   greedily to maximize the (frequency-weighted) variance reduction of the
//!   caching priority, so hint attributes that do not help predict priority
//!   (for example injected noise hints) are simply never split on.
//! * [`train_grouping`] — learns one tree per client from offline (or
//!   prefix) hint analysis, producing a [`HintSetGrouping`].
//! * [`HintSetGrouping::apply`] — rewrites a trace so that every request
//!   carries its *group* as the hint set. Running the unmodified CLIC policy
//!   on the rewritten trace is exactly "CLIC with grouped hint tracking".
//!
//! The `ablation_generalization` experiment binary in `clic-bench`
//! demonstrates the effect on the Figure 10 noise workload.

use std::collections::HashMap;

use cache_sim::{ClientId, HintCatalog, Request, Trace};

use crate::analysis::HintSetReport;

/// One training sample: the hint-value vector of a hint set, how often it
/// occurred, and its measured caching priority.
#[derive(Debug, Clone)]
struct Sample {
    values: Vec<u32>,
    weight: f64,
    priority: f64,
}

/// A node of the regression tree: either a leaf (a group) or a multiway
/// split on one hint attribute.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        group: u32,
    },
    Split {
        attribute: usize,
        children: HashMap<u32, usize>,
        default_child: usize,
    },
}

/// A regression tree over one client's hint attributes whose leaves are
/// hint-set groups.
#[derive(Debug, Clone)]
pub struct HintDecisionTree {
    nodes: Vec<Node>,
    leaves: u32,
}

impl HintDecisionTree {
    /// Learns a tree from `(values, weight, priority)` samples, producing at
    /// most `max_groups` leaves and refusing to split nodes whose total
    /// weight is below `min_weight`.
    fn fit(samples: &[Sample], max_groups: u32, min_weight: f64) -> Self {
        let mut tree = HintDecisionTree {
            nodes: Vec::new(),
            leaves: 0,
        };
        let indices: Vec<usize> = (0..samples.len()).collect();
        tree.build(samples, &indices, max_groups.max(1), min_weight);
        tree
    }

    fn build(
        &mut self,
        samples: &[Sample],
        indices: &[usize],
        budget: u32,
        min_weight: f64,
    ) -> usize {
        let total_weight: f64 = indices.iter().map(|&i| samples[i].weight).sum();
        let node_variance = weighted_variance(samples, indices);
        // Stop if we cannot afford more leaves, have too little data, or the
        // node is already pure.
        if budget <= 1 || indices.len() <= 1 || total_weight < min_weight || node_variance <= 0.0 {
            return self.push_leaf();
        }
        // Pick the attribute whose multiway split reduces variance the most.
        let arity = samples[indices[0]].values.len();
        let mut best: Option<(usize, f64, HashMap<u32, Vec<usize>>)> = None;
        for attribute in 0..arity {
            let mut partitions: HashMap<u32, Vec<usize>> = HashMap::new();
            for &i in indices {
                partitions
                    .entry(samples[i].values[attribute])
                    .or_default()
                    .push(i);
            }
            if partitions.len() <= 1 {
                continue;
            }
            let child_variance: f64 = partitions
                .values()
                .map(|part| {
                    let w: f64 = part.iter().map(|&i| samples[i].weight).sum();
                    weighted_variance(samples, part) * w / total_weight
                })
                .sum();
            let gain = node_variance - child_variance;
            if best.as_ref().map(|(_, g, _)| gain > *g).unwrap_or(true) && gain > 0.0 {
                best = Some((attribute, gain, partitions));
            }
        }
        let Some((attribute, _gain, partitions)) = best else {
            return self.push_leaf();
        };
        // A multiway split uses one leaf slot per child; make sure the budget
        // allows it, otherwise degrade to a leaf.
        if (partitions.len() as u32) > budget {
            return self.push_leaf();
        }
        // Reserve the node slot first so children can reference it stably.
        let node_index = self.nodes.len();
        self.nodes.push(Node::Leaf { group: 0 }); // placeholder
        let mut children = HashMap::new();
        // Distribute the remaining leaf budget across children proportionally
        // to their weight (at least one each).
        let partition_count = partitions.len() as u32;
        let mut remaining_budget = budget;
        let mut parts: Vec<(u32, Vec<usize>)> = partitions.into_iter().collect();
        // Largest partitions get their share of the budget first.
        parts.sort_by(|a, b| {
            let wa: f64 = a.1.iter().map(|&i| samples[i].weight).sum();
            let wb: f64 = b.1.iter().map(|&i| samples[i].weight).sum();
            wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut default_child = None;
        for (rank, (value, part)) in parts.into_iter().enumerate() {
            let left_to_place = partition_count - rank as u32;
            let share = (remaining_budget / left_to_place.max(1)).max(1);
            let child = self.build(samples, &part, share, min_weight);
            remaining_budget = remaining_budget
                .saturating_sub(share)
                .max(left_to_place - 1);
            children.insert(value, child);
            if default_child.is_none() {
                // The heaviest partition doubles as the default route for
                // values never seen during training.
                default_child = Some(child);
            }
        }
        self.nodes[node_index] = Node::Split {
            attribute,
            children,
            default_child: default_child.expect("split has at least one child"),
        };
        node_index
    }

    fn push_leaf(&mut self) -> usize {
        let group = self.leaves;
        self.leaves += 1;
        self.nodes.push(Node::Leaf { group });
        self.nodes.len() - 1
    }

    /// Number of groups (leaves) in the tree.
    pub fn groups(&self) -> u32 {
        self.leaves
    }

    /// Maps a hint-value vector to its group.
    pub fn group_of(&self, values: &[u32]) -> u32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { group } => return *group,
                Node::Split {
                    attribute,
                    children,
                    default_child,
                } => {
                    let value = values.get(*attribute).copied().unwrap_or(0);
                    node = children.get(&value).copied().unwrap_or(*default_child);
                }
            }
        }
    }
}

fn weighted_variance(samples: &[Sample], indices: &[usize]) -> f64 {
    let total_weight: f64 = indices.iter().map(|&i| samples[i].weight).sum();
    if total_weight <= 0.0 {
        return 0.0;
    }
    let mean: f64 = indices
        .iter()
        .map(|&i| samples[i].priority * samples[i].weight)
        .sum::<f64>()
        / total_weight;
    indices
        .iter()
        .map(|&i| {
            let d = samples[i].priority - mean;
            d * d * samples[i].weight
        })
        .sum::<f64>()
        / total_weight
}

/// A per-client mapping from hint sets to learned groups.
#[derive(Debug, Clone)]
pub struct HintSetGrouping {
    trees: HashMap<ClientId, HintDecisionTree>,
    max_groups: u32,
}

impl HintSetGrouping {
    /// Number of groups learned for `client` (0 if the client was not seen
    /// during training).
    pub fn groups_for(&self, client: ClientId) -> u32 {
        self.trees.get(&client).map(|t| t.groups()).unwrap_or(0)
    }

    /// The decision tree learned for `client`, if any.
    pub fn tree(&self, client: ClientId) -> Option<&HintDecisionTree> {
        self.trees.get(&client)
    }

    /// Rewrites `trace` so that every request's hint set is replaced by its
    /// learned *group*. The returned trace has one synthetic hint type per
    /// client (named `"hint group"`); running the standard CLIC policy on it
    /// is equivalent to running CLIC with grouped hint tracking.
    pub fn apply(&self, trace: &Trace) -> Trace {
        let mut catalog = HintCatalog::new();
        for schema in trace.catalog.schemas() {
            let groups = self
                .trees
                .get(&schema.client)
                .map(|t| t.groups())
                .unwrap_or(1)
                .max(1);
            catalog.add_client(
                format!("{}(grouped)", schema.client_name),
                &[("hint group", groups)],
            );
        }
        let mut requests = Vec::with_capacity(trace.requests.len());
        for req in &trace.requests {
            let resolved = trace.catalog.resolve(req.hint);
            let values: Vec<u32> = resolved.values.iter().map(|v| v.0).collect();
            let group = self
                .trees
                .get(&req.client)
                .map(|t| t.group_of(&values))
                .unwrap_or(0);
            let hint = catalog.intern(req.client, &[group]);
            requests.push(Request { hint, ..*req });
        }
        Trace {
            name: format!("{}(grouped<{}>)", trace.name, self.max_groups),
            requests,
            catalog,
        }
    }
}

/// Learns a [`HintSetGrouping`] from offline hint analysis.
///
/// `reports` is typically the output of [`crate::analyze_trace`] over a
/// training prefix of the workload; `catalog` must be the catalog those
/// reports refer to. At most `max_groups` groups are created per client.
///
/// # Panics
///
/// Panics if `max_groups` is zero.
pub fn train_grouping(
    catalog: &HintCatalog,
    reports: &[HintSetReport],
    max_groups: u32,
) -> HintSetGrouping {
    assert!(max_groups > 0, "at least one group is required");
    let mut per_client: HashMap<ClientId, Vec<Sample>> = HashMap::new();
    for report in reports {
        let resolved = catalog.resolve(report.hint);
        per_client.entry(resolved.client).or_default().push(Sample {
            values: resolved.values.iter().map(|v| v.0).collect(),
            weight: report.requests as f64,
            priority: report.priority,
        });
    }
    let trees = per_client
        .into_iter()
        .map(|(client, samples)| {
            let total_weight: f64 = samples.iter().map(|s| s.weight).sum();
            // Require at least 0.1% of the training weight before splitting a
            // node, so rare noise combinations do not get their own groups.
            let min_weight = (total_weight * 0.001).max(1.0);
            (
                client,
                HintDecisionTree::fit(&samples, max_groups, min_weight),
            )
        })
        .collect();
    HintSetGrouping { trees, max_groups }
}

/// Convenience wrapper: analyze a training prefix of `trace` (its first
/// `training_fraction` of requests), learn a grouping with at most
/// `max_groups` groups per client, and return it.
///
/// # Panics
///
/// Panics if `training_fraction` is not in `(0, 1]` or `max_groups` is zero.
pub fn train_grouping_from_prefix(
    trace: &Trace,
    training_fraction: f64,
    max_groups: u32,
) -> HintSetGrouping {
    assert!(
        training_fraction > 0.0 && training_fraction <= 1.0,
        "training fraction must be in (0, 1], got {training_fraction}"
    );
    let prefix_len = ((trace.len() as f64) * training_fraction).ceil() as usize;
    let prefix = Trace {
        name: trace.name.clone(),
        requests: trace.requests[..prefix_len.min(trace.len())].to_vec(),
        catalog: trace.catalog.clone(),
    };
    let reports = crate::analysis::analyze_trace(&prefix);
    train_grouping(&trace.catalog, &reports, max_groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, TraceBuilder};

    /// A trace where hint type 0 (two values) perfectly predicts re-reference
    /// behaviour and hint type 1 (eight values) is pure noise.
    fn informative_plus_noise_trace() -> Trace {
        let mut b = TraceBuilder::new().with_name("gen");
        let c = b.add_client("db", &[("useful", 2), ("noise", 8)]);
        let mut hints = Vec::new();
        for useful in 0..2u32 {
            for noise in 0..8u32 {
                hints.push((useful, noise, b.intern_hints(c, &[useful, noise])));
            }
        }
        let mut noise_counter = 0u32;
        for i in 0..20_000u64 {
            let noise = noise_counter % 8;
            noise_counter += 1;
            // useful=1 pages are written then quickly re-read; useful=0 pages
            // are one-shot.
            let (_, _, hot_hint) = hints[(8 + noise) as usize];
            let (_, _, cold_hint) = hints[noise as usize];
            b.push(c, 1_000_000 + (i % 64), AccessKind::Write, None, hot_hint);
            b.push(c, 1_000_000 + (i % 64), AccessKind::Read, None, hot_hint);
            b.push(c, i, AccessKind::Read, None, cold_hint);
        }
        b.build()
    }

    #[test]
    fn tree_splits_on_the_informative_attribute_only() {
        let trace = informative_plus_noise_trace();
        let grouping = train_grouping_from_prefix(&trace, 0.5, 4);
        let client = ClientId(0);
        let tree = grouping.tree(client).expect("client was trained");
        // Two groups suffice: the tree must not fragment on the noise hint.
        assert!(tree.groups() <= 4);
        assert!(tree.groups() >= 2, "the useful attribute must be split on");
        // All noise values of the same useful value map to the same group.
        let group_hot = tree.group_of(&[1, 0]);
        for noise in 1..8u32 {
            assert_eq!(tree.group_of(&[1, noise]), group_hot);
        }
        let group_cold = tree.group_of(&[0, 0]);
        for noise in 1..8u32 {
            assert_eq!(tree.group_of(&[0, noise]), group_cold);
        }
        assert_ne!(group_hot, group_cold);
    }

    #[test]
    fn apply_rewrites_hints_but_not_requests() {
        let trace = informative_plus_noise_trace();
        let grouping = train_grouping_from_prefix(&trace, 0.25, 8);
        let grouped = grouping.apply(&trace);
        assert_eq!(grouped.len(), trace.len());
        // Page/kind structure untouched.
        for (a, b) in trace.requests.iter().zip(grouped.requests.iter()) {
            assert_eq!(a.page, b.page);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.client, b.client);
        }
        // The grouped trace has far fewer distinct hint sets.
        assert!(grouped.summary().distinct_hint_sets <= 8);
        assert!(grouped.summary().distinct_hint_sets < trace.summary().distinct_hint_sets);
        assert!(grouped.name.contains("grouped"));
        // Labels describe the synthetic group hint type.
        let label = grouped.catalog.describe(grouped.requests[0].hint);
        assert!(label.contains("hint group"), "{label}");
    }

    #[test]
    fn grouped_clic_matches_ungrouped_clic_on_clean_hints() {
        use crate::{Clic, ClicConfig};
        use cache_sim::simulate;

        let trace = informative_plus_noise_trace();
        let grouping = train_grouping_from_prefix(&trace, 0.25, 4);
        let grouped = grouping.apply(&trace);
        let config = ClicConfig::default()
            .with_window(5_000)
            .with_metadata_charging(false);
        let ungrouped_ratio = {
            let mut clic = Clic::new(96, config);
            simulate(&mut clic, &trace).read_hit_ratio()
        };
        let grouped_ratio = {
            let mut clic = Clic::new(96, config);
            simulate(&mut clic, &grouped).read_hit_ratio()
        };
        // Grouping must not hurt when the informative structure is preserved.
        assert!(
            grouped_ratio >= ungrouped_ratio - 0.05,
            "grouped {grouped_ratio:.3} vs ungrouped {ungrouped_ratio:.3}"
        );
    }

    #[test]
    fn unknown_values_route_to_the_default_child() {
        let trace = informative_plus_noise_trace();
        let grouping = train_grouping_from_prefix(&trace, 0.5, 4);
        let tree = grouping.tree(ClientId(0)).unwrap();
        // Value 99 never appears in training; it must still map to some group.
        let g = tree.group_of(&[1, 99]);
        assert!(g < tree.groups());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_rejected() {
        let trace = informative_plus_noise_trace();
        let reports = crate::analysis::analyze_trace(&trace);
        let _ = train_grouping(&trace.catalog, &reports, 0);
    }

    #[test]
    fn clients_without_reports_get_single_group() {
        let trace = informative_plus_noise_trace();
        let grouping = train_grouping_from_prefix(&trace, 0.5, 4);
        assert_eq!(grouping.groups_for(ClientId(42)), 0);
        // Applying to a trace containing only known clients still works.
        let grouped = grouping.apply(&trace);
        assert_eq!(grouped.catalog.client_count(), trace.catalog.client_count());
    }
}
