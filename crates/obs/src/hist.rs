//! A log-scaled latency histogram in the HDR-histogram style:
//! power-of-two bucket groups subdivided into linear sub-buckets.
//!
//! Why this shape: latencies span six-plus orders of magnitude (a buffer
//! hit is tens of nanoseconds, an fsync stall is milliseconds), so linear
//! buckets either blur the tail or explode in memory. Power-of-two groups
//! with [`SUB_BUCKETS`] linear sub-buckets each give a fixed **relative**
//! resolution instead: every recorded value lands in a bucket whose width
//! is at most `1/32` (≈3%) of the value, values `0..64` are exact, and the
//! whole table is [`BUCKET_COUNT`] (= 1920) atomic words — about 15 KiB —
//! no matter how many samples are recorded. That bounded footprint is what
//! lets the load harness keep one histogram per client thread instead of
//! one `u64` per batch.
//!
//! Recording is a handful of relaxed atomic adds (no lock, no allocation);
//! merging is exact (bucket-wise addition); `sum` and `max` are tracked
//! exactly on the side, so the mean and the maximum are not quantized —
//! only the interior percentiles are, by ≤3%.
//!
//! Percentiles use the **nearest-rank** definition: the p-th percentile of
//! N samples is the value of the sample at rank `ceil(p·N)` (1-based),
//! computed in integer arithmetic so `p·N` landing exactly on an index is
//! handled without floating-point rounding surprises. The reported value is
//! the containing bucket's upper bound, clamped to the exact observed
//! maximum.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per power-of-two group.
const SUB_BITS: u32 = 5;
/// Linear sub-buckets per power-of-two group (32).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total buckets covering the whole `u64` range: values `0..64` exactly
/// (two groups), then one 32-bucket group per remaining power of two.
pub const BUCKET_COUNT: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// The bucket a value lands in. Values below `2 * SUB_BUCKETS` (= 64) map
/// to themselves; above that, the top [`SUB_BITS`]+1 significant bits pick
/// the bucket.
fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB_BUCKETS as u64 {
        value as usize
    } else {
        let top = 63 - value.leading_zeros();
        let group = (top - SUB_BITS + 1) as usize;
        group * SUB_BUCKETS + ((value >> (top - SUB_BITS)) as usize - SUB_BUCKETS)
    }
}

/// The largest value mapping to bucket `index` (inclusive upper bound).
fn bucket_upper(index: usize) -> u64 {
    if index < 2 * SUB_BUCKETS {
        index as u64
    } else {
        let group = index / SUB_BUCKETS;
        let within = (index % SUB_BUCKETS) as u128;
        let shift = (group - 1) as u32;
        let upper = ((within + SUB_BUCKETS as u128 + 1) << shift) - 1;
        upper.min(u64::MAX as u128) as u64
    }
}

/// A lock-free, fixed-memory latency histogram. Record from any number of
/// threads concurrently; snapshot from any thread at any time.
///
/// The unit is the caller's choice (this workspace records nanoseconds for
/// spans and microseconds for batch latencies); the histogram itself is
/// unit-agnostic.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (~15 KiB, allocated once).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: four relaxed atomic RMWs, no lock, no
    /// allocation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out for analysis. Concurrent recording is
    /// fine; the snapshot is then merely a consistent-enough point-in-time
    /// view (bucket totals may trail `count` by in-flight records).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Folds another histogram's counts into this one. Exact: bucket-wise
    /// addition loses nothing relative to recording every sample here.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Records one completed operation against its **scheduled** start time
    /// rather than its actual send time: the coordinated-omission-safe
    /// measurement for open-loop load generation. If the generator fell
    /// behind schedule, the queueing delay it induced is charged to the
    /// request (`completed - scheduled`) instead of being silently dropped
    /// the way closed-loop "measure from actual send" timing drops it.
    /// Saturates at zero if `completed` somehow precedes `scheduled`.
    pub fn record_scheduled(&self, scheduled: u64, completed: u64) {
        self.record(completed.saturating_sub(scheduled));
    }

    /// Folds an owned snapshot's counts into this live histogram (exact,
    /// like [`LatencyHistogram::merge_from`]) — how thread-local
    /// measurements get published into a shared registry histogram.
    pub fn merge_snapshot(&self, snapshot: &HistogramSnapshot) {
        for (mine, &theirs) in self.buckets.iter().zip(snapshot.buckets.iter()) {
            if theirs > 0 {
                mine.fetch_add(theirs, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snapshot.count, Ordering::Relaxed);
        self.sum.fetch_add(snapshot.sum, Ordering::Relaxed);
        self.max.fetch_max(snapshot.max, Ordering::Relaxed);
    }
}

/// An owned point-in-time copy of a [`LatencyHistogram`], with percentile
/// queries and exact merging.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Reassembles a snapshot from parts previously observed via
    /// [`HistogramSnapshot::buckets`]/`count`/`sum`/`max` — the decode half
    /// of a wire codec. `buckets` may be shorter than [`BUCKET_COUNT`]
    /// (trailing zeros elided, as a sparse encoding produces); anything
    /// longer is truncated to [`BUCKET_COUNT`].
    pub fn from_parts(buckets: Vec<u64>, count: u64, sum: u64, max: u64) -> HistogramSnapshot {
        let mut buckets = buckets;
        buckets.truncate(BUCKET_COUNT);
        HistogramSnapshot {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// The raw per-bucket counts (index → samples in that bucket), for
    /// encoding; may be empty for a default snapshot. Bucket boundaries are
    /// an implementation detail — pair this only with
    /// [`HistogramSnapshot::from_parts`] on the other side.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean (0.0 when empty) — `sum` is tracked outside the buckets,
    /// so the mean is not quantized.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The nearest-rank `num/den` quantile (e.g. `percentile(999, 1000)`
    /// for p99.9): the value at 1-based rank `ceil(count · num / den)`,
    /// clamped to rank 1 so tiny quantiles of non-empty data return the
    /// smallest sample. Returns 0 when empty. Exact for values below 64,
    /// within 1/32 above (the bucket's upper bound, capped at the exact
    /// observed max).
    pub fn percentile(&self, num: u64, den: u64) -> u64 {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        // Integer ceiling avoids the float-rounding edge cases when
        // count · num / den lands exactly on an index.
        let rank = ((self.count as u128 * num as u128 + den as u128 - 1) / den as u128).max(1);
        let mut cumulative = 0u128;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n as u128;
            if cumulative >= rank {
                return bucket_upper(index).min(self.max);
            }
        }
        self.max
    }

    /// The median (nearest-rank p50).
    pub fn p50(&self) -> u64 {
        self.percentile(50, 100)
    }

    /// Nearest-rank p95.
    pub fn p95(&self) -> u64 {
        self.percentile(95, 100)
    }

    /// Nearest-rank p99.
    pub fn p99(&self) -> u64 {
        self.percentile(99, 100)
    }

    /// Nearest-rank p99.9.
    pub fn p999(&self) -> u64 {
        self.percentile(999, 1000)
    }

    /// Folds `other` into this snapshot (bucket-wise addition — exact).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, &theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Renders the summary as a JSON object string:
    /// `{"count":…,"sum":…,"max":…,"mean":…,"p50":…,"p95":…,"p99":…,"p999":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}",
            self.count,
            self.sum,
            self.max,
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.p999()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..64u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose upper bound is >= the value,
        // and bucket boundaries never regress as values grow. Sample each
        // power-of-two group at its edges and interior.
        let mut samples: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            let base = 1u64 << shift;
            samples.extend([base, base + base / 2, base + (base - 1)]);
        }
        samples.push(u64::MAX);
        samples.sort_unstable();
        samples.dedup();
        let mut last_index = 0usize;
        for &v in &samples {
            let idx = bucket_index(v);
            assert!(idx >= last_index, "index regressed at {v}");
            assert!(bucket_upper(idx) >= v, "upper bound below value {v}");
            assert!(idx < BUCKET_COUNT);
            last_index = idx;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_upper(BUCKET_COUNT - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded_by_one_thirty_second() {
        for &v in &[
            64u64,
            100,
            1_000,
            12_345,
            1 << 20,
            987_654_321,
            u64::MAX / 3,
        ] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            let error = (upper - v) as f64 / v as f64;
            assert!(error <= 1.0 / 32.0 + 1e-9, "error {error} too large at {v}");
        }
    }

    #[test]
    fn percentiles_of_one_to_one_hundred() {
        let h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 50);
        assert_eq!(s.p95(), 95);
        assert_eq!(s.p99(), 99);
        assert_eq!(s.p999(), 100);
        assert_eq!(s.max(), 100);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean(), 0.0);
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.p50(), 7);
        assert_eq!(s.p99(), 7);
        assert_eq!(s.p999(), 7);
        assert_eq!(s.max(), 7);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for v in 0..1_000u64 {
            let sample = v * v % 77_777;
            if v % 2 == 0 {
                a.record(sample)
            } else {
                b.record(sample)
            }
            all.record(sample);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());

        let mut sa = a.snapshot();
        let empty = HistogramSnapshot::default();
        let before = sa.clone();
        sa.merge(&empty);
        assert_eq!(sa, before, "merging an empty snapshot is a no-op");
        let mut se = HistogramSnapshot::default();
        se.merge(&before);
        assert_eq!(se, before, "merging into an empty snapshot copies");
        let live = LatencyHistogram::new();
        live.merge_snapshot(&before);
        assert_eq!(live.snapshot(), before, "snapshot → live merge is exact");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 500);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn exact_rank_landings_use_integer_math() {
        // 10 samples: q=0.5 gives rank exactly 5 → the 5th smallest.
        let h = LatencyHistogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 5);
        assert_eq!(s.percentile(1, 10), 1, "p10 of 10 samples is the 1st");
        assert_eq!(s.percentile(0, 1), 1, "p0 clamps to the smallest sample");
        assert_eq!(s.percentile(1, 1), 10);
    }
}
