//! Per-thread event-trace ring buffers with a central collector.
//!
//! A [`TraceCollector`] hands each recording thread its own fixed-capacity
//! ring buffer the first time that thread records — registration is a
//! thread-local lookup plus, once per thread, a push onto the collector's
//! buffer list. After that, recording an event locks only the thread's own
//! ring (uncontended except while a drain is in progress), so tracing in
//! the WAL or a shard worker never serializes against other threads.
//!
//! Capacity is fixed: when a ring is full the **oldest** event is
//! overwritten and a dropped-event counter is bumped, so a long run keeps
//! the most recent window of activity instead of growing without bound.
//!
//! [`TraceCollector::drain`] empties every ring into one [`TraceDump`],
//! globally ordered by start timestamp, which renders either as a JSON
//! array ([`TraceDump::to_json`]) or as a human-readable per-kind summary
//! plus chronological timeline ([`TraceDump::timeline`]). Timestamps come
//! from the collector's [`Clock`], so a mock clock makes dumps
//! deterministic.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};

use crate::clock::Clock;
use crate::json::escape_into;

/// What a trace span measured. One variant per instrumented section of the
/// stack, WAL fsync to shard worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One WAL record append (detail: record bytes).
    WalAppend,
    /// A WAL append that also synced the log file (detail: appends covered
    /// by the sync).
    WalFsync,
    /// A group-commit sync amortizing several appends (detail: batch size).
    GroupCommit,
    /// One background/inline flush pass (detail: pages written back).
    FlushPass,
    /// A contended frame-latch acquisition — only recorded when the pin
    /// loop actually had to spin (detail: spin iterations).
    FrameLatchWait,
    /// One shard worker batch, dequeue to reply (detail: requests in the
    /// batch).
    ShardBatch,
    /// One cross-shard priority merge (detail: shards merged).
    PriorityMerge,
    /// One wire frame decoded from or encoded onto a network connection by
    /// the event-driven front-end (detail: frame bytes). With this kind a
    /// timeline spans client → wire → shard batch → WAL fsync.
    NetFrame,
}

impl SpanKind {
    /// Every kind, in display order.
    pub const ALL: [SpanKind; 8] = [
        SpanKind::WalAppend,
        SpanKind::WalFsync,
        SpanKind::GroupCommit,
        SpanKind::FlushPass,
        SpanKind::FrameLatchWait,
        SpanKind::ShardBatch,
        SpanKind::PriorityMerge,
        SpanKind::NetFrame,
    ];

    /// Stable snake_case label used in JSON and timelines.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::WalAppend => "wal_append",
            SpanKind::WalFsync => "wal_fsync",
            SpanKind::GroupCommit => "group_commit",
            SpanKind::FlushPass => "flush_pass",
            SpanKind::FrameLatchWait => "frame_latch_wait",
            SpanKind::ShardBatch => "shard_batch",
            SpanKind::PriorityMerge => "priority_merge",
            SpanKind::NetFrame => "net_frame",
        }
    }
}

/// One completed span: what, which thread, when, how long, and a
/// kind-specific detail value (batch size, bytes, spin count, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What was measured.
    pub kind: SpanKind,
    /// Collector-assigned id of the recording thread (dense, first-record
    /// order — not the OS thread id).
    pub thread: u64,
    /// Span start, nanoseconds on the collector's clock.
    pub start_ns: u64,
    /// Span end, nanoseconds on the collector's clock.
    pub end_ns: u64,
    /// Kind-specific payload (see [`SpanKind`] docs).
    pub detail: u64,
}

impl TraceEvent {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// One thread's ring buffer. Held by the thread (via TLS) and by the
/// collector, so events survive the thread's exit until drained.
#[derive(Debug)]
struct TraceBuffer {
    thread: u64,
    ring: Mutex<Ring>,
}

thread_local! {
    /// This thread's buffers, one per collector it has recorded into,
    /// keyed by collector id. Weak, so a dropped collector's entries can
    /// be pruned instead of pinning rings for the thread's lifetime.
    static LOCAL_BUFFERS: RefCell<Vec<(u64, Weak<TraceBuffer>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(0);

/// The central trace sink: owns the clock, hands out per-thread rings, and
/// drains them into ordered dumps.
#[derive(Debug)]
pub struct TraceCollector {
    id: u64,
    capacity: usize,
    clock: Clock,
    next_thread: AtomicU64,
    buffers: Mutex<Vec<Arc<TraceBuffer>>>,
}

impl TraceCollector {
    /// A collector whose rings hold `capacity` events per thread (clamped
    /// to at least 1), timestamping with `clock`.
    pub fn new(clock: Clock, capacity: usize) -> TraceCollector {
        TraceCollector {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            clock,
            next_thread: AtomicU64::new(0),
            buffers: Mutex::new(Vec::new()),
        }
    }

    /// The collector's clock (shared with anything else timestamping
    /// against the same timeline).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Events each per-thread ring can hold before overwriting the oldest.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn thread_buffer(&self) -> Arc<TraceBuffer> {
        LOCAL_BUFFERS.with(|local| {
            let mut local = local.borrow_mut();
            if let Some(buffer) = local
                .iter()
                .find(|(id, _)| *id == self.id)
                .and_then(|(_, weak)| weak.upgrade())
            {
                return buffer;
            }
            // First record from this thread (or the collector was dropped
            // and its id reused — ids are unique, so just re-register).
            // Registration is the slow path; prune dead entries here.
            local.retain(|(_, weak)| weak.strong_count() > 0);
            let buffer = Arc::new(TraceBuffer {
                thread: self.next_thread.fetch_add(1, Ordering::Relaxed),
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(self.capacity),
                    dropped: 0,
                }),
            });
            self.buffers
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(Arc::clone(&buffer));
            local.push((self.id, Arc::downgrade(&buffer)));
            buffer
        })
    }

    /// Records a completed span on the calling thread's ring, overwriting
    /// the oldest event (and counting the drop) if the ring is full.
    pub fn record(&self, kind: SpanKind, start_ns: u64, end_ns: u64, detail: u64) {
        let buffer = self.thread_buffer();
        let mut ring = buffer.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            kind,
            thread: buffer.thread,
            start_ns,
            end_ns,
            detail,
        });
    }

    /// Empties every thread's ring into one dump ordered by
    /// `(start_ns, thread)`, including rings of threads that have exited.
    pub fn drain(&self) -> TraceDump {
        let buffers = self.buffers.lock().unwrap_or_else(PoisonError::into_inner);
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for buffer in buffers.iter() {
            let mut ring = buffer.ring.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend(ring.events.drain(..));
            dropped += ring.dropped;
            ring.dropped = 0;
        }
        events.sort_by_key(|e| (e.start_ns, e.thread, e.end_ns));
        TraceDump { events, dropped }
    }
}

/// Everything drained from a [`TraceCollector`]: globally ordered events
/// plus how many older events the rings overwrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDump {
    /// Drained events, ordered by `(start_ns, thread)`.
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overwrites since the previous drain.
    pub dropped: u64,
}

impl TraceDump {
    /// Renders the dump as a JSON object:
    /// `{"dropped":…,"events":[{"kind":…,"thread":…,"start_ns":…,"dur_ns":…,"detail":…},…]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"dropped\":{},\"events\":[", self.dropped);
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"kind\":");
            escape_into(&mut out, event.kind.label());
            out.push_str(&format!(
                ",\"thread\":{},\"start_ns\":{},\"dur_ns\":{},\"detail\":{}}}",
                event.thread,
                event.start_ns,
                event.duration_ns(),
                event.detail
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders a human-readable summary: per-kind counts and durations,
    /// then the first `max_lines` events chronologically.
    pub fn timeline(&self, max_lines: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} events ({} dropped)\n",
            self.events.len(),
            self.dropped
        ));
        for kind in SpanKind::ALL {
            let mut count = 0u64;
            let mut total_ns = 0u64;
            let mut max_ns = 0u64;
            for event in self.events.iter().filter(|e| e.kind == kind) {
                count += 1;
                total_ns += event.duration_ns();
                max_ns = max_ns.max(event.duration_ns());
            }
            if count > 0 {
                out.push_str(&format!(
                    "  {:<16} x{:<6} total {:>10} ns  mean {:>8} ns  max {:>8} ns\n",
                    kind.label(),
                    count,
                    total_ns,
                    total_ns / count,
                    max_ns
                ));
            }
        }
        for event in self.events.iter().take(max_lines) {
            out.push_str(&format!(
                "  [{:>12} ns] t{:<3} {:<16} {:>8} ns  detail={}\n",
                event.start_ns,
                event.thread,
                event.kind.label(),
                event.duration_ns(),
                event.detail
            ));
        }
        if self.events.len() > max_lines {
            out.push_str(&format!(
                "  … {} more events\n",
                self.events.len() - max_lines
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_order_across_threads_and_survive_thread_exit() {
        let clock = Clock::mock();
        let collector = Arc::new(TraceCollector::new(clock.clone(), 64));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let collector = Arc::clone(&collector);
                let clock = clock.clone();
                scope.spawn(move || {
                    for _ in 0..5 {
                        let start = clock.now_nanos();
                        clock.advance(10);
                        collector.record(SpanKind::ShardBatch, start, clock.now_nanos(), 32);
                    }
                });
            }
        });
        let dump = collector.drain();
        assert_eq!(dump.events.len(), 15);
        assert_eq!(dump.dropped, 0);
        assert!(dump
            .events
            .windows(2)
            .all(|w| w[0].start_ns <= w[1].start_ns));
        // A second drain is empty: drains consume.
        assert!(collector.drain().events.is_empty());
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let clock = Clock::mock();
        let collector = TraceCollector::new(clock.clone(), 4);
        for i in 0..10u64 {
            collector.record(SpanKind::WalAppend, i, i + 1, i);
        }
        let dump = collector.drain();
        assert_eq!(dump.events.len(), 4);
        assert_eq!(dump.dropped, 6);
        let starts: Vec<u64> = dump.events.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, [6, 7, 8, 9], "the newest window is kept");
    }

    #[test]
    fn mock_clock_makes_dumps_deterministic() {
        let render = || {
            let clock = Clock::mock();
            let collector = TraceCollector::new(clock.clone(), 16);
            clock.advance(100);
            collector.record(SpanKind::WalFsync, 0, clock.now_nanos(), 8);
            clock.advance(50);
            collector.record(SpanKind::FlushPass, 100, clock.now_nanos(), 3);
            let dump = collector.drain();
            (dump.to_json(), dump.timeline(10))
        };
        let (json_a, text_a) = render();
        let (json_b, text_b) = render();
        assert_eq!(json_a, json_b);
        assert_eq!(text_a, text_b);
        crate::json::validate(&json_a).expect("trace dump must be valid JSON");
        assert!(text_a.contains("wal_fsync"));
        assert!(text_a.contains("flush_pass"));
    }

    #[test]
    fn distinct_collectors_do_not_share_rings() {
        let a = TraceCollector::new(Clock::mock(), 8);
        let b = TraceCollector::new(Clock::mock(), 8);
        a.record(SpanKind::PriorityMerge, 0, 1, 2);
        assert_eq!(a.drain().events.len(), 1);
        assert!(b.drain().events.is_empty());
    }
}
