//! Minimal JSON helpers: string escaping for the emitters in this crate
//! and a strict validator for smoke tests.
//!
//! The workspace is dependency-free, so there is no serde; the trace dump
//! and metrics snapshot build their JSON by hand and the `--smoke-obs`
//! gate uses [`validate`] — a tiny recursive-descent checker — to prove the
//! output actually parses.

/// Appends `s` to `out` as a JSON string literal (with quotes), escaping
/// control characters, quotes, and backslashes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `input` is one complete, syntactically valid JSON value
/// (object, array, string, number, `true`, `false`, or `null`), with
/// nothing but whitespace after it. Returns the byte offset and a short
/// message on failure.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, b"true"),
        Some(b'f') => parse_literal(bytes, pos, b"false"),
        Some(b'n') => parse_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!(
            "unexpected byte {c:#04x} at offset {pos}",
            pos = *pos
        )),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {}", *pos));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *pos));
    }
    *pos += 1;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad unicode escape at offset {}", *pos)),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at offset {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0usize;
    while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("expected digits at offset {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0usize;
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("expected fraction digits at offset {}", *pos));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0usize;
        while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("expected exponent digits at offset {}", *pos));
        }
    }
    Ok(())
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &[u8]) -> Result<(), String> {
    if bytes.len() >= *pos + literal.len() && &bytes[*pos..*pos + literal.len()] == literal {
        *pos += literal.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "  -12.5e+3  ",
            r#"{"a":[1,2,{"b":"c\n\"d\""}],"e":null}"#,
            r#"["é", 0.5, false]"#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} should parse: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "truefalse",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{'single':1}",
            "1.",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let mut out = String::new();
        escape_into(&mut out, "line\nbreak \"quoted\" back\\slash \u{1}");
        validate(&out).expect("escaped string must be valid JSON");
    }
}
