//! Observability for the CLIC reproduction: metrics, latency histograms,
//! and event tracing — dependency-free, and free when disabled.
//!
//! The policy work decides *what* to cache; the system grown around it
//! (WAL, group commit, flusher, frame latches, sharded server) wins or
//! loses on *time*. This crate is the measurement substrate the ROADMAP's
//! remaining studies need: every runtime layer threads a [`Recorder`]
//! through, and the benchmarks read percentiles and traces back out.
//!
//! # The three primitives, and what each costs
//!
//! | Primitive | Record cost | Memory | Use it for |
//! |---|---|---|---|
//! | [`Counter`] / [`Gauge`] | 1–2 relaxed atomic RMWs | 8–16 B | things you *add up*: requests served, WAL syncs, queue depth. Deterministic for a deterministic workload, so they can be asserted on and diffed across `--jobs` counts. |
//! | [`LatencyHistogram`] | 4 relaxed atomic RMWs | ~15 KiB fixed | things you take *percentiles* of: batch service time, fsync stalls. Log-scaled (≤3% relative error, exact below 64), bounded memory no matter the sample count, exact merge. Timing-dependent, so never part of determinism checks. |
//! | trace span ([`Recorder::span`]) | 2 clock reads + a push into a per-thread ring | capacity × 40 B per thread | *reconstructing interleavings*: which fsync stalled which shard batch, when the flusher pass ran. Fixed-capacity ring keeps the newest window; drain to JSON or a text timeline. The most expensive primitive — put it around operations that already do I/O or take locks, not in per-access loops. |
//!
//! Rules of thumb: a counter when you will assert or sum it, a histogram
//! when you will plot it, a span when you will *read* it to explain an
//! interleaving. All three are cheap enough for the WAL/flusher/shard
//! paths they instrument; none belong on the policy's per-access hot path
//! (which is why the `access_hotpath` benchmark takes no recorder at all).
//!
//! # Zero when disabled
//!
//! Everything hangs off a [`Recorder`], a cloneable
//! `Option<Arc<…>>` handle. [`Recorder::disabled`] (the `Default`) makes
//! every call a branch on `None` the optimizer folds away — components can
//! take instrumentation unconditionally and let configuration decide.
//!
//! # One clock
//!
//! All timestamps flow through [`Clock`]: monotonic nanoseconds in
//! production, an atomic counter under [`Clock::mock`] in tests — so trace
//! dumps and timelines are byte-for-byte deterministic where tests need
//! them to be.
//!
//! # Example
//!
//! ```
//! use clic_obs::{Clock, Recorder, SpanKind};
//!
//! let clock = Clock::mock();
//! let recorder = Recorder::with_clock(clock.clone());
//!
//! // Counter: cache the handle, bump it lock-free.
//! let syncs = recorder.counter("wal.syncs").unwrap();
//! syncs.inc();
//!
//! // Histogram: record latencies, read percentiles from a snapshot.
//! let lat = recorder.histogram("fsync_ns").unwrap();
//! lat.record(250);
//! lat.record(800);
//!
//! // Span: RAII around the interesting section.
//! let span = recorder.span(SpanKind::WalFsync);
//! clock.advance(1_000);
//! span.finish(2); // detail: appends covered by this sync
//!
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter("wal.syncs"), 1);
//! assert_eq!(snap.histogram("fsync_ns").max(), 800);
//! let dump = recorder.drain_trace();
//! assert_eq!(dump.events.len(), 1);
//! assert_eq!(dump.events[0].duration_ns(), 1_000);
//! clic_obs::json::validate(&dump.to_json()).unwrap();
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod clock;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use clock::Clock;
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use recorder::{Recorder, Span, DEFAULT_TRACE_CAPACITY};
pub use registry::{Counter, Gauge, GaugeSnapshot, MetricsRegistry, MetricsSnapshot};
pub use trace::{SpanKind, TraceCollector, TraceDump, TraceEvent};
