//! The one clock every timestamp flows through.
//!
//! All of the observability primitives ([`crate::Recorder`] spans,
//! histogram recordings made by callers, trace-event timestamps) read time
//! from a [`Clock`] rather than calling [`Instant::now`] directly. That
//! indirection buys determinism: tests inject [`Clock::mock`] and drive it
//! with [`Clock::advance`], so a trace dump or a timeline summary compares
//! byte-for-byte across runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock, either real (wall `Instant`s relative to a
/// base taken at construction) or mock (an atomic counter advanced
/// explicitly by tests).
///
/// Cloning is cheap and clones share the same time base: two clones of a
/// mock clock see each other's [`Clock::advance`] calls, and two clones of
/// a monotonic clock report nanoseconds since the same origin.
#[derive(Clone, Debug)]
pub struct Clock {
    kind: ClockKind,
}

#[derive(Clone, Debug)]
enum ClockKind {
    Monotonic { base: Instant },
    Mock { now: Arc<AtomicU64> },
}

impl Clock {
    /// A real clock: nanoseconds since this call, via [`Instant`].
    pub fn monotonic() -> Clock {
        Clock {
            kind: ClockKind::Monotonic {
                base: Instant::now(),
            },
        }
    }

    /// A mock clock starting at zero. Time stands still until
    /// [`Clock::advance`] is called — perfect for deterministic trace
    /// output in tests.
    pub fn mock() -> Clock {
        Clock {
            kind: ClockKind::Mock {
                now: Arc::new(AtomicU64::new(0)),
            },
        }
    }

    /// Nanoseconds since the clock's origin.
    pub fn now_nanos(&self) -> u64 {
        match &self.kind {
            ClockKind::Monotonic { base } => base.elapsed().as_nanos() as u64,
            ClockKind::Mock { now } => now.load(Ordering::Relaxed),
        }
    }

    /// Advances a mock clock by `nanos` and returns `true`; a no-op
    /// returning `false` on a monotonic clock (real time cannot be pushed).
    pub fn advance(&self, nanos: u64) -> bool {
        match &self.kind {
            ClockKind::Monotonic { .. } => false,
            ClockKind::Mock { now } => {
                now.fetch_add(nanos, Ordering::Relaxed);
                true
            }
        }
    }

    /// Whether this is a mock clock.
    pub fn is_mock(&self) -> bool {
        matches!(self.kind, ClockKind::Mock { .. })
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::monotonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_is_shared_across_clones_and_deterministic() {
        let clock = Clock::mock();
        let clone = clock.clone();
        assert_eq!(clock.now_nanos(), 0);
        assert!(clock.advance(250));
        assert_eq!(clone.now_nanos(), 250, "clones share the time base");
        assert!(clone.advance(50));
        assert_eq!(clock.now_nanos(), 300);
        assert!(clock.is_mock());
    }

    #[test]
    fn monotonic_clock_moves_forward_and_ignores_advance() {
        let clock = Clock::monotonic();
        let a = clock.now_nanos();
        assert!(!clock.advance(1_000_000), "real time cannot be pushed");
        let b = clock.now_nanos();
        assert!(b >= a);
        assert!(!clock.is_mock());
    }
}
