//! A registry of named atomic counters, gauges, and histograms with
//! deterministic, mergeable snapshots.
//!
//! Handles ([`Counter`], [`Gauge`], shared [`LatencyHistogram`]s) are
//! looked up **once** by name — which takes the registry's internal mutex —
//! and then used lock-free forever: a counter bump is one relaxed
//! `fetch_add`, a gauge update two. Hot paths must cache their handles at
//! construction time; only registration and [`MetricsRegistry::snapshot`]
//! ever touch the lock.
//!
//! Snapshots key every metric by its registered name in a `BTreeMap`, so
//! iteration order — and therefore JSON output — is deterministic, and
//! snapshots from different registries (per-shard stores, the server
//! front-end) merge by name: counters add, gauges add values and take the
//! max peak, histograms add bucket-wise.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::json::escape_into;

/// A monotonically increasing named counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct GaugeCell {
    value: AtomicI64,
    peak: AtomicI64,
}

/// A named signed gauge (e.g. a queue depth) that also tracks its
/// high-water mark. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<GaugeCell>);

impl Gauge {
    /// Adds `delta` (may be negative); increases update the peak.
    pub fn add(&self, delta: i64) {
        let now = self.0.value.fetch_add(delta, Ordering::Relaxed) + delta;
        if delta > 0 {
            self.0.peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest value ever reached by an increment.
    pub fn peak(&self) -> i64 {
        self.0.peak.load(Ordering::Relaxed)
    }
}

/// Point-in-time value and high-water mark of a [`Gauge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// The gauge's value at snapshot time.
    pub value: i64,
    /// The highest value any increment reached.
    pub peak: i64,
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<GaugeCell>>,
    histograms: BTreeMap<String, Arc<LatencyHistogram>>,
}

/// The registry: get-or-create metrics by name, snapshot them all at once.
///
/// Thread-safe; typically owned by a [`crate::Recorder`] or embedded in a
/// long-lived component (the page store keeps one for its always-on I/O
/// counters).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // Registration and snapshots only touch map structure; a panicked
        // holder cannot corrupt it in a way recovery would observe.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Gets or creates the counter named `name`. Cache the handle — this
    /// takes the registry lock.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        Counter(Arc::clone(
            inner.counters.entry(name.to_string()).or_default(),
        ))
    }

    /// Gets or creates the gauge named `name`. Cache the handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        Gauge(Arc::clone(
            inner.gauges.entry(name.to_string()).or_default(),
        ))
    }

    /// Gets or creates the histogram named `name`. Cache the handle.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut inner = self.lock();
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Snapshots every registered metric, keyed by name in deterministic
    /// (sorted) order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, cell)| {
                    (
                        name.clone(),
                        GaugeSnapshot {
                            value: cell.value.load(Ordering::Relaxed),
                            peak: cell.peak.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, hist)| (name.clone(), hist.snapshot()))
                .collect(),
        }
    }
}

/// A named, mergeable snapshot of a [`MetricsRegistry`] (or of several,
/// merged). Plain data: clone it, compare it, ship it through an in-process
/// protocol message.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values and peaks by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's snapshot, or zeros if absent.
    pub fn gauge(&self, name: &str) -> GaugeSnapshot {
        self.gauges.get(name).copied().unwrap_or_default()
    }

    /// A histogram's snapshot, or an empty one if absent.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        self.histograms.get(name).cloned().unwrap_or_default()
    }

    /// Merges another snapshot by name: counters add, gauge values add and
    /// peaks take the max, histograms add bucket-wise (exact).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, &value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, &gauge) in &other.gauges {
            let entry = self.gauges.entry(name.clone()).or_default();
            entry.value += gauge.value;
            entry.peak = entry.peak.max(gauge.peak);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Renders the snapshot as one JSON object:
    /// `{"counters":{…},"gauges":{name:{"value":…,"peak":…}},"histograms":{name:{…}}}`
    /// with keys in sorted (deterministic) order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, gauge)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push_str(&format!(
                ":{{\"value\":{},\"peak\":{}}}",
                gauge.value, gauge.peak
            ));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            out.push_str(&hist.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_snapshots_are_sorted() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("b.second");
        let b = registry.counter("a.first");
        let again = registry.counter("b.second");
        a.add(3);
        again.inc();
        b.inc();
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "b.second"]);
        assert_eq!(snap.counter("b.second"), 4);
        assert_eq!(snap.counter("a.first"), 1);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_track_peaks() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("queue.depth");
        g.inc();
        g.inc();
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 3);
        let snap = registry.snapshot();
        assert_eq!(
            snap.gauge("queue.depth"),
            GaugeSnapshot { value: 1, peak: 3 }
        );
    }

    #[test]
    fn snapshots_merge_by_name() {
        let left = MetricsRegistry::new();
        let right = MetricsRegistry::new();
        left.counter("shared").add(10);
        right.counter("shared").add(5);
        right.counter("only_right").add(2);
        left.gauge("depth").add(4);
        right.gauge("depth").add(1);
        left.histogram("lat").record(100);
        right.histogram("lat").record(200);

        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged.counter("shared"), 15);
        assert_eq!(merged.counter("only_right"), 2);
        assert_eq!(merged.gauge("depth").value, 5);
        assert_eq!(merged.gauge("depth").peak, 4);
        assert_eq!(merged.histogram("lat").count(), 2);
        assert_eq!(merged.histogram("lat").max(), 200);
    }

    #[test]
    fn snapshot_json_is_valid_and_deterministic() {
        let registry = MetricsRegistry::new();
        registry.counter("requests").add(7);
        registry.gauge("depth").add(2);
        registry.histogram("lat").record(42);
        let a = registry.snapshot().to_json();
        let b = registry.snapshot().to_json();
        assert_eq!(a, b);
        crate::json::validate(&a).expect("snapshot JSON must parse");
        assert!(a.contains("\"requests\":7"));
    }
}
