//! The zero-when-disabled front door: [`Recorder`].
//!
//! Every instrumented component takes a `Recorder` by value (it is a cheap
//! `Clone` — one `Option<Arc>`). [`Recorder::disabled`] carries no
//! allocation at all: every operation on it is a branch on a `None` that
//! the optimizer folds away, so un-instrumented fast paths (the
//! `access_hotpath` benchmark drives the policy with no recorder anywhere
//! near it) pay nothing. An enabled recorder bundles the three primitives
//! around one shared [`Clock`]:
//!
//! * a [`MetricsRegistry`] for counters/gauges/histograms,
//! * a [`TraceCollector`] for per-thread span rings.
//!
//! Spans are RAII: [`Recorder::span`] stamps the start time, and the
//! returned [`Span`] records the event when finished (or dropped). On a
//! disabled recorder the span holds nothing and does nothing.

use std::sync::Arc;

use crate::clock::Clock;
use crate::hist::LatencyHistogram;
use crate::registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
use crate::trace::{SpanKind, TraceCollector, TraceDump};

/// Default per-thread trace-ring capacity (events) for
/// [`Recorder::enabled`].
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

#[derive(Debug)]
struct RecorderInner {
    clock: Clock,
    registry: MetricsRegistry,
    tracer: TraceCollector,
}

/// A handle to the observability stack, or — the default — an inert stub.
///
/// Disabled is the zero state: `Recorder::default()` ==
/// [`Recorder::disabled`], all methods are no-ops returning `None`/empty,
/// and cloning copies one `None`.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<RecorderInner>>,
}

impl Recorder {
    /// The inert recorder: records nothing, costs nothing.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// An enabled recorder on the real ([`Clock::monotonic`]) clock with
    /// [`DEFAULT_TRACE_CAPACITY`] trace events per thread.
    pub fn enabled() -> Recorder {
        Recorder::with_clock(Clock::monotonic())
    }

    /// An enabled recorder on `clock` (inject [`Clock::mock`] for
    /// deterministic trace output) with the default trace capacity.
    pub fn with_clock(clock: Clock) -> Recorder {
        Recorder::with_clock_and_capacity(clock, DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled recorder with an explicit per-thread trace-ring
    /// capacity.
    pub fn with_clock_and_capacity(clock: Clock, trace_capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Arc::new(RecorderInner {
                clock: clock.clone(),
                registry: MetricsRegistry::new(),
                tracer: TraceCollector::new(clock, trace_capacity),
            })),
        }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The recorder's clock, if enabled.
    pub fn clock(&self) -> Option<&Clock> {
        self.inner.as_deref().map(|inner| &inner.clock)
    }

    /// The metrics registry, if enabled. Use this to cache handles at
    /// construction time rather than looking metrics up per operation.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|inner| &inner.registry)
    }

    /// Gets or creates a counter, if enabled. Cache the handle.
    pub fn counter(&self, name: &str) -> Option<Counter> {
        self.registry().map(|registry| registry.counter(name))
    }

    /// Gets or creates a gauge, if enabled. Cache the handle.
    pub fn gauge(&self, name: &str) -> Option<Gauge> {
        self.registry().map(|registry| registry.gauge(name))
    }

    /// Gets or creates a histogram, if enabled. Cache the handle.
    pub fn histogram(&self, name: &str) -> Option<Arc<LatencyHistogram>> {
        self.registry().map(|registry| registry.histogram(name))
    }

    /// Opens a span of `kind`: stamps the start time now, records the
    /// event when the returned [`Span`] is finished or dropped. On a
    /// disabled recorder this is a no-op returning an inert span.
    #[inline]
    pub fn span(&self, kind: SpanKind) -> Span<'_> {
        match self.inner.as_deref() {
            Some(inner) => Span {
                state: Some(SpanState {
                    inner,
                    kind,
                    start_ns: inner.clock.now_nanos(),
                    detail: 0,
                }),
            },
            None => Span { state: None },
        }
    }

    /// Records a completed span with explicit timestamps (for sections
    /// measured out-of-band, like an interval carved out of another span).
    pub fn event(&self, kind: SpanKind, start_ns: u64, end_ns: u64, detail: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.tracer.record(kind, start_ns, end_ns, detail);
        }
    }

    /// Snapshots every metric; empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match self.inner.as_deref() {
            Some(inner) => inner.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Drains the trace rings; empty when disabled.
    pub fn drain_trace(&self) -> TraceDump {
        match self.inner.as_deref() {
            Some(inner) => inner.tracer.drain(),
            None => TraceDump::default(),
        }
    }
}

#[derive(Debug)]
struct SpanState<'a> {
    inner: &'a RecorderInner,
    kind: SpanKind,
    start_ns: u64,
    detail: u64,
}

/// An in-flight trace span. Records its event — with the clock's current
/// time as the end — when [`Span::finish`]ed or dropped. Inert (a `None`)
/// when opened on a disabled recorder.
#[derive(Debug)]
pub struct Span<'a> {
    state: Option<SpanState<'a>>,
}

impl Span<'_> {
    /// Whether this span will record anything.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Sets the kind-specific detail value reported with the event.
    pub fn set_detail(&mut self, detail: u64) {
        if let Some(state) = self.state.as_mut() {
            state.detail = detail;
        }
    }

    /// The span's start timestamp, if recording.
    pub fn start_ns(&self) -> Option<u64> {
        self.state.as_ref().map(|state| state.start_ns)
    }

    /// Ends the span now with `detail` and records the event.
    pub fn finish(mut self, detail: u64) {
        self.set_detail(detail);
        // Drop does the recording.
    }

    /// Ends the span without recording anything (e.g. the guarded section
    /// turned out to be the uninteresting case).
    pub fn cancel(mut self) {
        self.state = None;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.inner.tracer.record(
                state.kind,
                state.start_ns,
                state.inner.clock.now_nanos(),
                state.detail,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let recorder = Recorder::disabled();
        assert!(!recorder.is_enabled());
        assert!(recorder.counter("x").is_none());
        assert!(recorder.histogram("x").is_none());
        let span = recorder.span(SpanKind::WalAppend);
        assert!(!span.is_recording());
        drop(span);
        assert_eq!(recorder.snapshot(), MetricsSnapshot::default());
        assert!(recorder.drain_trace().events.is_empty());
    }

    #[test]
    fn spans_record_on_finish_and_cancel_suppresses() {
        let clock = Clock::mock();
        let recorder = Recorder::with_clock(clock.clone());
        let span = recorder.span(SpanKind::FlushPass);
        clock.advance(500);
        span.finish(12);
        let cancelled = recorder.span(SpanKind::FlushPass);
        cancelled.cancel();
        let dump = recorder.drain_trace();
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].start_ns, 0);
        assert_eq!(dump.events[0].duration_ns(), 500);
        assert_eq!(dump.events[0].detail, 12);
    }

    #[test]
    fn clones_share_the_same_stack() {
        let recorder = Recorder::enabled();
        let clone = recorder.clone();
        recorder.counter("shared").unwrap().add(2);
        clone.counter("shared").unwrap().inc();
        assert_eq!(recorder.snapshot().counter("shared"), 3);
    }
}
