//! Criterion micro-benchmark: requests-per-second throughput of every
//! replacement policy (the baselines and CLIC) on a synthetic skewed
//! workload. This quantifies the paper's claim that CLIC's bookkeeping is
//! cheap enough for an on-line storage-server cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cache_sim::policies::BaselinePolicy;
use cache_sim::{simulate, AccessKind, Trace, TraceBuilder, WriteHint};
use clic_core::{Clic, ClicConfig, TrackingMode};

/// Builds a deterministic skewed trace with a few hint sets, mixing reads,
/// replacement writes, and recovery writes.
fn synthetic_trace(requests: usize, pages: u64) -> Trace {
    let mut b = TraceBuilder::new().with_name("bench");
    let c = b.add_client("bench", &[("object", 4), ("kind", 3)]);
    let hints: Vec<_> = (0..4u32)
        .flat_map(|o| (0..3u32).map(move |k| (o, k)))
        .map(|(o, k)| b.intern_hints(c, &[o, k]))
        .collect();
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..requests {
        let r = next();
        let page = if r % 4 == 0 {
            r % (pages / 16).max(1)
        } else {
            r % pages
        };
        let object = (page % 4) as u32;
        let (kind, write_hint, hint_kind) = match next() % 5 {
            0 => (AccessKind::Write, Some(WriteHint::Replacement), 1),
            1 => (AccessKind::Write, Some(WriteHint::Recovery), 2),
            _ => (AccessKind::Read, None, 0),
        };
        b.push(
            c,
            page,
            kind,
            write_hint,
            hints[(object * 3 + hint_kind) as usize],
        );
    }
    b.build()
}

fn bench_policies(criterion: &mut Criterion) {
    let requests = 200_000usize;
    let trace = synthetic_trace(requests, 50_000);
    let capacity = 4_096;

    let mut group = criterion.benchmark_group("policy_throughput");
    group.throughput(Throughput::Elements(requests as u64));
    group.sample_size(10);

    for kind in BaselinePolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("baseline", kind.name()),
            &trace,
            |bench, trace| {
                bench.iter(|| {
                    let mut policy = kind.build(capacity);
                    simulate(policy.as_mut(), trace).stats.read_hits
                })
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("clic", "full"), &trace, |bench, trace| {
        bench.iter(|| {
            let mut policy = Clic::new(capacity, ClicConfig::default().with_window(50_000));
            simulate(&mut policy, trace).stats.read_hits
        })
    });
    group.bench_with_input(BenchmarkId::new("clic", "top16"), &trace, |bench, trace| {
        bench.iter(|| {
            let mut policy = Clic::new(
                capacity,
                ClicConfig::default()
                    .with_window(50_000)
                    .with_tracking(TrackingMode::TopK(16)),
            );
            simulate(&mut policy, trace).stats.read_hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
