//! Criterion micro-benchmark: the cost of CLIC's bookkeeping knobs — outqueue
//! size, tracking mode (full hint table vs top-k Space-Saving), and window
//! length — measured as end-to-end simulation throughput on the same trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cache_sim::{simulate, AccessKind, Trace, TraceBuilder};
use clic_core::{Clic, ClicConfig, TrackingMode};

fn hinted_trace(requests: usize) -> Trace {
    let mut b = TraceBuilder::new().with_name("overhead");
    let c = b.add_client("bench", &[("object", 16), ("kind", 4)]);
    let hints: Vec<_> = (0..16u32)
        .flat_map(|o| (0..4u32).map(move |k| (o, k)))
        .map(|(o, k)| b.intern_hints(c, &[o, k]))
        .collect();
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..requests {
        let r = next();
        let page = r % 100_000;
        let hint = hints[(r % hints.len() as u64) as usize];
        b.push(c, page, AccessKind::Read, None, hint);
    }
    b.build()
}

fn bench_clic_overhead(criterion: &mut Criterion) {
    let requests = 200_000usize;
    let trace = hinted_trace(requests);
    let capacity = 8_192;

    let mut group = criterion.benchmark_group("clic_overhead");
    group.throughput(Throughput::Elements(requests as u64));
    group.sample_size(10);

    for factor in [0.0f64, 1.0, 5.0, 10.0] {
        group.bench_with_input(
            BenchmarkId::new("outqueue_factor", format!("{factor}")),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut clic = Clic::new(
                        capacity,
                        ClicConfig::default()
                            .with_window(50_000)
                            .with_outqueue_factor(factor),
                    );
                    simulate(&mut clic, trace).stats.read_hits
                })
            },
        );
    }
    for (label, mode) in [
        ("full", TrackingMode::Full),
        ("top8", TrackingMode::TopK(8)),
        ("top64", TrackingMode::TopK(64)),
    ] {
        group.bench_with_input(BenchmarkId::new("tracking", label), &trace, |b, trace| {
            b.iter(|| {
                let mut clic = Clic::new(
                    capacity,
                    ClicConfig::default()
                        .with_window(50_000)
                        .with_tracking(mode),
                );
                simulate(&mut clic, trace).stats.read_hits
            })
        });
    }
    for window in [10_000u64, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("window", window), &trace, |b, trace| {
            b.iter(|| {
                let mut clic = Clic::new(capacity, ClicConfig::default().with_window(window));
                simulate(&mut clic, trace).stats.read_hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clic_overhead);
criterion_main!(benches);
