//! Criterion micro-benchmark: update throughput and top-k recall of the
//! frequent-item algorithms (Space-Saving vs Misra-Gries vs Lossy Counting vs
//! exact counting) on a Zipf-distributed hint-set stream. This is the
//! ablation behind the paper's choice of Space-Saving (Section 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use stream_stats::{ExactCounter, FrequencyEstimator, LossyCounting, MisraGries, SpaceSaving};

/// Deterministic Zipf-ish stream of `n` items over a `domain`-value universe.
fn zipf_stream(n: usize, domain: u64) -> Vec<u64> {
    let mut state = 0x853c49e6748fea9bu64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..n)
        .map(|_| {
            let r = next() % domain.max(1);
            domain / (1 + r)
        })
        .collect()
}

fn bench_frequent_items(criterion: &mut Criterion) {
    let stream = zipf_stream(500_000, 10_000);
    let k = 100;

    let mut group = criterion.benchmark_group("frequent_items");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("space_saving", k), &stream, |b, stream| {
        b.iter(|| {
            let mut ss: SpaceSaving<u64> = SpaceSaving::new(k);
            for &item in stream {
                ss.observe(item);
            }
            ss.len()
        })
    });
    group.bench_with_input(BenchmarkId::new("misra_gries", k), &stream, |b, stream| {
        b.iter(|| {
            let mut mg = MisraGries::new(k);
            for &item in stream {
                mg.observe(item);
            }
            mg.len()
        })
    });
    group.bench_with_input(
        BenchmarkId::new("lossy_counting", "eps=0.001"),
        &stream,
        |b, stream| {
            b.iter(|| {
                let mut lc = LossyCounting::new(0.001);
                for &item in stream {
                    lc.observe(item);
                }
                lc.len()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("exact", "unbounded"),
        &stream,
        |b, stream| {
            b.iter(|| {
                let mut exact: ExactCounter<u64> = ExactCounter::new();
                for &item in stream {
                    exact.observe(item);
                }
                exact.distinct()
            })
        },
    );
    group.finish();

    // Report top-k recall once (printed, not timed) so the accuracy side of
    // the ablation is visible next to the throughput numbers.
    let mut exact: ExactCounter<u64> = ExactCounter::new();
    let mut ss: SpaceSaving<u64> = SpaceSaving::new(k);
    let mut mg = MisraGries::new(k);
    for &item in &stream {
        exact.observe(item);
        ss.observe(item);
        mg.observe(item);
    }
    let truth: std::collections::HashSet<u64> =
        exact.top_k(k).into_iter().map(|(item, _)| item).collect();
    let recall = |tracked: Vec<(u64, u64)>| {
        let hits = tracked
            .iter()
            .filter(|(item, _)| truth.contains(item))
            .count();
        hits as f64 / truth.len() as f64
    };
    println!(
        "top-{k} recall: space-saving {:.3}, misra-gries {:.3}",
        recall(FrequencyEstimator::tracked(&ss)),
        recall(mg.tracked()),
    );
}

criterion_group!(benches, bench_frequent_items);
criterion_main!(benches);
