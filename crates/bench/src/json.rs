//! A minimal JSON writer for the machine-readable bench reports.
//!
//! The build environment is offline, so instead of `serde_json` this module
//! provides just what the harness needs: build a [`JsonValue`] tree and
//! render it with [`std::fmt::Display`]. There is deliberately no parser —
//! `run_all` composes its combined report by embedding the per-experiment
//! fragment files verbatim via [`JsonValue::Raw`].

use std::fmt;

/// A JSON value. Construct with the enum variants or the [`JsonValue::num`] /
/// [`JsonValue::str`] shorthands, render with `to_string()` / `{}`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Non-finite values render as `null` (JSON has no NaN).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
    /// Pre-rendered JSON text embedded verbatim. The caller asserts it is
    /// valid JSON (used to splice per-experiment fragment files into the
    /// combined report without a parser).
    Raw(String),
}

impl JsonValue {
    /// A number from anything convertible to `f64`.
    pub fn num(value: impl Into<f64>) -> Self {
        JsonValue::Num(value.into())
    }

    /// A string value.
    pub fn str(value: impl Into<String>) -> Self {
        JsonValue::Str(value.into())
    }

    /// An object from key/value pairs.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) if n.is_finite() => write!(f, "{n}"),
            JsonValue::Num(_) => write!(f, "null"),
            JsonValue::Str(s) => escape_into(f, s),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
            JsonValue::Raw(text) => write!(f, "{text}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_variant() {
        let value = JsonValue::object([
            ("null", JsonValue::Null),
            ("flag", JsonValue::Bool(true)),
            ("int", JsonValue::num(3u32)),
            ("float", JsonValue::num(0.5)),
            ("nan", JsonValue::Num(f64::NAN)),
            ("text", JsonValue::str("a\"b\\c\nd")),
            (
                "arr",
                JsonValue::Array(vec![JsonValue::num(1u32), JsonValue::str("x")]),
            ),
            ("raw", JsonValue::Raw("{\"k\":1}".into())),
        ]);
        assert_eq!(
            value.to_string(),
            "{\"null\":null,\"flag\":true,\"int\":3,\"float\":0.5,\"nan\":null,\
             \"text\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,\"x\"],\"raw\":{\"k\":1}}"
        );
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(JsonValue::str("a\u{1}b").to_string(), "\"a\\u0001b\"");
    }
}
