//! Ablation for the paper's proposed future-work extension (Sections 6.3
//! and 8): grouping related hint sets with a decision tree so that CLIC's
//! bounded hint tracking survives floods of low-value hint types.
//!
//! Repeats the Figure 10 noise experiment three ways:
//!
//! * CLIC with top-k tracking (k = 100) on the noisy trace (the paper's
//!   degraded configuration),
//! * CLIC with *unbounded* tracking on the noisy trace (what the degradation
//!   costs relative to unlimited space), and
//! * CLIC with top-k tracking on the noisy trace after decision-tree
//!   grouping (the proposed remedy: the tree learns to ignore the noise
//!   attributes).

use cache_sim::simulate;
use clic_bench::{build_policy, json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use clic_core::train_grouping_from_prefix;
use trace_gen::{inject_noise, NoiseConfig, TracePreset};

const NOISE_LEVELS: [u32; 4] = [0, 1, 2, 3];
const MAX_GROUPS: u32 = 64;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Ablation: decision-tree hint-set grouping under noise, scale = {}\n",
        ctx.scale_label()
    );

    let preset = TracePreset::Db2C300;
    let base = preset.build(ctx.scale);
    println!("generated {}", base.summary());
    let cache = preset.reference_cache_size(ctx.scale);

    let mut table = ResultTable::new(
        format!(
            "Hint-set grouping vs noise (trace {}, {cache}-page cache, k = 100, {MAX_GROUPS} groups)",
            preset.name()
        ),
        &[
            "T",
            "hint sets",
            "CLIC k=100",
            "CLIC unbounded",
            "CLIC k=100 + grouping",
            "groups learned",
        ],
    );

    let mut metrics = Vec::new();
    for &t in &NOISE_LEVELS {
        let noisy = inject_noise(&base, NoiseConfig::new(t));
        let hint_sets = noisy.summary().distinct_hint_sets;
        let window = window_for_trace(&noisy);

        let run = |trace: &cache_sim::Trace, name: &str| {
            let mut policy = build_policy(name, trace, cache, window);
            simulate(policy.as_mut(), trace).read_hit_ratio()
        };
        let bounded = run(&noisy, "CLIC(k=100)");
        let unbounded = run(&noisy, "CLIC");

        // Learn the grouping from the first 20% of the noisy trace, then run
        // bounded CLIC over the grouped rewrite.
        let grouping = train_grouping_from_prefix(&noisy, 0.2, MAX_GROUPS);
        let grouped_trace = grouping.apply(&noisy);
        let grouped = run(&grouped_trace, "CLIC(k=100)");
        let groups = grouping.groups_for(cache_sim::ClientId(0));

        table.push_row(vec![
            t.to_string(),
            hint_sets.to_string(),
            format!("{:.1}%", bounded * 100.0),
            format!("{:.1}%", unbounded * 100.0),
            format!("{:.1}%", grouped * 100.0),
            groups.to_string(),
        ]);
        println!("T={t} done");
        metrics.push((
            format!("T={t}"),
            JsonValue::object([
                ("bounded", JsonValue::num(bounded)),
                ("unbounded", JsonValue::num(unbounded)),
                ("grouped", JsonValue::num(grouped)),
            ]),
        ));
    }
    table.emit(&ctx.out_dir, "ablation_generalization")?;
    ctx.emit_json("ablation_generalization", JsonValue::Object(metrics))
}
