//! `access_hotpath`: nanoseconds per request on CLIC's three per-request
//! paths — hit, miss-admit (full cache, eviction), and miss-reject (full
//! cache, bypass into the outqueue) — measured for the production slab-backed
//! [`Clic`] *and* the retained pre-refactor [`ReferenceClic`] baseline in the
//! same process, so the reported speed-up is against the real original
//! implementation rather than a straw man.
//!
//! Workloads are closed-form, steady-state drivers of a single path:
//!
//! * **hit** — a working set half the cache size is re-read forever; after
//!   the warm-up pass every access is a hit.
//! * **miss-admit** — two hint sets with preloaded priorities; fresh pages of
//!   the higher-priority hint stream into a full cache, evicting the
//!   resident lower-priority pages. After each full turnover burst the
//!   priorities are swapped (via `import_priorities`, amortized over the
//!   burst), so *every* measured access takes the evict-then-admit path.
//! * **miss-reject** — fresh pages of a zero-priority hint stream into a
//!   full cache: every access is declined and churns the bounded outqueue.
//!
//! Requests are replayed through [`CachePolicy::access_batch`] in
//! [`cache_sim::REPLAY_CHUNK`]-sized chunks — the production driver path,
//! which for the slab [`Clic`] runs the prefetch-batched group structure
//! (hashes precomputed, index buckets and slab slots software-prefetched
//! ahead of the apply pass). The [`ReferenceClic`] baseline replays the same
//! chunks through the default per-request batch loop.
//!
//! The priority window is effectively infinite so no re-evaluation noise
//! lands inside the measurement. `--quick` shrinks the per-path time budget
//! to roughly a second overall (the `scripts/verify.sh --smoke-bench` crash
//! check).

use std::time::{Duration, Instant};

use cache_sim::{CachePolicy, ClientId, HintSetId, PageId, Request, REPLAY_CHUNK};
use clic_bench::{json::JsonValue, ExperimentContext, ResultTable};
use clic_core::{Clic, ClicConfig, ReferenceClic};
use trace_gen::PresetScale;

/// Cache size used by every workload (pages).
const CAPACITY: usize = 4 * 1024;

fn config() -> ClicConfig {
    ClicConfig::default()
        .with_window(u64::MAX)
        .with_metadata_charging(false)
}

/// The two implementations under test, behind one driver interface.
trait Subject: CachePolicy {
    fn build() -> Self;
    fn import(&mut self, snapshot: &[(HintSetId, f64)]);
}

impl Subject for Clic {
    fn build() -> Self {
        Clic::new(CAPACITY, config())
    }
    fn import(&mut self, snapshot: &[(HintSetId, f64)]) {
        self.import_priorities(snapshot.iter().copied());
    }
}

impl Subject for ReferenceClic {
    fn build() -> Self {
        ReferenceClic::new(CAPACITY, config())
    }
    fn import(&mut self, snapshot: &[(HintSetId, f64)]) {
        self.import_priorities(snapshot.iter().copied());
    }
}

fn read(page: u64, hint: u32) -> Request {
    Request::read(ClientId(0), PageId(page), HintSetId(hint))
}

/// Shared measurement state: a monotone sequence counter, a page allocator,
/// and the request/outcome buffers for batched replay.
struct Driver {
    seq: u64,
    next_page: u64,
    reqs: Vec<Request>,
    outcomes: Vec<cache_sim::policy::AccessOutcome>,
}

impl Driver {
    fn new() -> Self {
        Driver {
            seq: 0,
            next_page: 0,
            reqs: Vec::new(),
            outcomes: Vec::new(),
        }
    }

    fn fresh_page(&mut self) -> u64 {
        self.next_page += 1;
        self.next_page
    }

    fn access<P: CachePolicy>(&mut self, policy: &mut P, req: &Request) {
        policy.access(req, self.seq);
        self.seq += 1;
    }

    /// Replays the staged `reqs` buffer through the policy's batched fast
    /// path in [`REPLAY_CHUNK`]-sized chunks (exactly how the simulation
    /// driver and the server shard workers replay), returning the number of
    /// requests served.
    fn replay_staged<P: CachePolicy>(&mut self, policy: &mut P) -> u64 {
        for chunk in self.reqs.chunks(REPLAY_CHUNK) {
            self.outcomes.clear();
            policy.access_batch(chunk, self.seq, &mut self.outcomes);
            self.seq += chunk.len() as u64;
        }
        self.reqs.len() as u64
    }
}

/// Runs `burst` repeatedly until `budget` elapses (at least once), returning
/// nanoseconds per request. `burst` returns the number of requests it served.
fn measure<F: FnMut() -> u64>(mut burst: F, budget: Duration) -> f64 {
    let start = Instant::now();
    let mut requests = 0u64;
    loop {
        requests += burst();
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / requests as f64
}

/// Hit path: warm a half-capacity working set, then re-read it forever
/// through the batched replay path.
fn bench_hit<P: Subject>(budget: Duration) -> f64 {
    let mut policy = P::build();
    let mut driver = Driver::new();
    let working = CAPACITY as u64 / 2;
    for p in 0..working {
        driver.access(&mut policy, &read(p, 0));
    }
    assert_eq!(
        policy.len(),
        working as usize,
        "warm-up must fill the cache"
    );
    // The hit burst re-reads the same pages every time; stage it once.
    driver.reqs = (0..working).map(|p| read(p, 0)).collect();
    measure(|| driver.replay_staged(&mut policy), budget)
}

/// Miss-admit path: alternate full-turnover bursts of fresh pages whose hint
/// outranks everything resident, swapping the two hints' priorities between
/// bursts.
fn bench_miss_admit<P: Subject>(budget: Duration) -> f64 {
    let mut policy = P::build();
    let mut driver = Driver::new();
    policy.import(&[(HintSetId(0), 1.0), (HintSetId(1), 0.5)]);
    // Fill with hint-1 pages while the cache has room.
    for _ in 0..CAPACITY {
        let page = driver.fresh_page();
        driver.access(&mut policy, &read(page, 1));
    }
    assert_eq!(policy.len(), CAPACITY, "warm-up must fill the cache");
    let mut incoming: u32 = 0;
    measure(
        || {
            driver.reqs.clear();
            for _ in 0..CAPACITY {
                let page = driver.fresh_page();
                driver.reqs.push(read(page, incoming));
            }
            let served = driver.replay_staged(&mut policy);
            // The cache is now entirely `incoming`; flip which hint outranks
            // the resident pages so the next burst keeps evicting.
            incoming ^= 1;
            let (hi, lo) = (incoming, incoming ^ 1);
            policy.import(&[(HintSetId(hi), 1.0), (HintSetId(lo), 0.5)]);
            served
        },
        budget,
    )
}

/// Miss-reject path: a full cache and all-zero priorities decline every
/// fresh page into the (bounded, churning) outqueue.
fn bench_miss_reject<P: Subject>(budget: Duration) -> f64 {
    let mut policy = P::build();
    let mut driver = Driver::new();
    for _ in 0..CAPACITY {
        let page = driver.fresh_page();
        driver.access(&mut policy, &read(page, 0));
    }
    assert_eq!(policy.len(), CAPACITY, "warm-up must fill the cache");
    measure(
        || {
            driver.reqs.clear();
            for _ in 0..1024 {
                let page = driver.fresh_page();
                driver.reqs.push(read(page, 0));
            }
            driver.replay_staged(&mut policy)
        },
        budget,
    )
}

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let quick = matches!(ctx.scale, PresetScale::Smoke);
    let budget = if quick {
        Duration::from_millis(120)
    } else {
        Duration::from_millis(600)
    };
    println!(
        "CLIC access hot path: {CAPACITY}-page cache, {} per path x 2 implementations\n",
        if quick { "~0.12 s" } else { "~0.6 s" }
    );

    type PathBench = fn(Duration) -> f64;
    let paths: [(&str, PathBench, PathBench); 3] = [
        ("hit", bench_hit::<ReferenceClic>, bench_hit::<Clic>),
        (
            "miss-admit",
            bench_miss_admit::<ReferenceClic>,
            bench_miss_admit::<Clic>,
        ),
        (
            "miss-reject",
            bench_miss_reject::<ReferenceClic>,
            bench_miss_reject::<Clic>,
        ),
    ];

    let mut table = ResultTable::new(
        "CLIC access hot path: ns/request, pre-refactor baseline vs slab page table",
        &[
            "path",
            "baseline ns/req",
            "slab ns/req",
            "baseline Mreq/s",
            "slab Mreq/s",
            "speedup",
        ],
    );
    let mut speedups = Vec::new();
    let mut metrics = Vec::new();
    for (name, baseline, slab) in paths {
        let base_ns = baseline(budget);
        let slab_ns = slab(budget);
        let speedup = base_ns / slab_ns;
        speedups.push(speedup);
        table.push_row(vec![
            name.to_string(),
            format!("{base_ns:.1}"),
            format!("{slab_ns:.1}"),
            format!("{:.2}", 1e3 / base_ns),
            format!("{:.2}", 1e3 / slab_ns),
            format!("{speedup:.2}x"),
        ]);
        metrics.push((
            name.to_string(),
            JsonValue::object([
                ("baseline_ns_per_req", JsonValue::num(base_ns)),
                ("slab_ns_per_req", JsonValue::num(slab_ns)),
                ("speedup", JsonValue::num(speedup)),
            ]),
        ));
    }
    let geomean = speedups
        .iter()
        .fold(1.0f64, |acc, s| acc * s)
        .powf(1.0 / speedups.len() as f64);
    table.push_row(vec![
        "geomean".to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{geomean:.2}x"),
    ]);
    table.emit(&ctx.out_dir, "access_hotpath")?;
    println!("geomean speedup: {geomean:.2}x (target: >= 1.5x)");
    metrics.push(("geomean_speedup".to_string(), JsonValue::num(geomean)));
    ctx.emit_json("access_hotpath", JsonValue::Object(metrics))
}
