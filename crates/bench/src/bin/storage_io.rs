//! Storage I/O experiment: the data plane behind the Figure 11 workload.
//!
//! The simulation experiments count hits and misses; this one moves real
//! bytes. The three DB2 TPC-C traces of Figure 11 are interleaved into one
//! multi-client trace and replayed through [`clic_store::replay_storage`]
//! against a disk-backed [`clic_store::PageStore`] — once with CLIC
//! (top-k, k = 100) adjudicating admission/eviction of the buffer frames
//! and once with the LRU baseline. Each policy gets a fresh store in a
//! temporary directory with the write-ahead log enabled and a deterministic
//! inline flush threshold (no background flusher thread), so every counter
//! in the output is bit-identical at any `--jobs` value.
//!
//! Two sweeps ride on the headline comparison:
//!
//! * **Durability** — the CLIC replay repeated at each WAL durability
//!   level (`buffered`, `group-commit`, `strict`). Policy statistics are
//!   identical across levels — durability only changes *when* the log is
//!   fsynced — so the interesting columns are `wal_syncs`,
//!   `group_commits`, and the derived `fsyncs` total: group commit
//!   coalesces a batch of acknowledged appends into one sync and must
//!   land well under strict's one-sync-per-append. The group-commit point
//!   uses a batch-only trigger (the time-based `max_wait` clause is set
//!   far beyond the run's length) so its counters are deterministic.
//! * **Shards** — the same CLIC workload split across 2 and 4 per-shard
//!   stores via [`clic_store::replay_storage_partitioned`], the offline
//!   twin of the server's per-shard data plane. Partitions replay
//!   concurrently on the `--jobs` pool and are merged in partition order,
//!   so the summed counters are bit-identical at any job count.
//!
//! Reported per configuration: bytes read/written at the cache interface,
//! buffer hit ratio, disk-tier reads and writes (the paper's cost metric,
//! here measured against a real file), flush, WAL, and fsync overhead. The
//! headline JSON metrics are `clic_vs_lru_disk_reads_saved` (how many disk
//! reads CLIC's hint-informed admission avoids relative to LRU) and
//! `group_commit_vs_strict_fsyncs_saved` (how many fsyncs group commit
//! coalesces away on the same workload).
//!
//! Pages are 256 bytes rather than the store's 4 KiB default so the paper
//! scale stays within a few hundred MB of scratch disk; the headline
//! counters (disk reads, hit ratios, records, syncs) are size-independent
//! and the byte totals scale linearly with the page size.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use cache_sim::{BoxedPolicy, IoStats};
use clic_bench::{build_policy, json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use clic_store::{
    replay_storage, replay_storage_partitioned, Durability, PageStore, Recorder,
    StorageReplayReport, StoreConfig,
};
use trace_gen::{interleave, TracePreset};

/// Small pages keep the scratch files modest at paper scale; see the
/// module docs for why this does not change the headline metrics.
const PAGE_SIZE: usize = 256;

/// The two admission/eviction policies compared over the same store setup.
const POLICIES: [&str; 2] = ["CLIC(k=100)", "LRU"];

/// The shard counts the partitioned sweep replays CLIC across.
const SHARD_COUNTS: [usize; 2] = [2, 4];

/// Group commit with only the batch trigger active: syncing every 8
/// pending appends exactly, never on the wall clock, keeps the sweep's
/// sync counters reproducible run-to-run.
fn deterministic_group_commit() -> Durability {
    Durability::GroupCommit {
        max_batch: 8,
        max_wait: Duration::from_secs(86_400),
    }
}

/// A fresh scratch store config for one replay. A stale directory from a
/// killed run would replay its WAL into this run's counters; start from
/// nothing.
fn scratch_config(label: &str, cache_pages: usize, durability: Durability) -> StoreConfig {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "clic-storage-io-{}-{}",
        std::process::id(),
        label.replace(['(', ')', '=', ',', ' '], "_")
    ));
    fs::remove_dir_all(&dir).ok();
    StoreConfig::new(&dir, cache_pages)
        .with_page_size(PAGE_SIZE)
        .with_wal(true)
        .with_durability(durability)
        // Deterministic write-back: flush inline once a quarter of the
        // frames are dirty instead of from a background thread.
        .with_flush_threshold((cache_pages / 4).max(1))
        // A fresh enabled recorder per replay so each report's latency
        // snapshot covers exactly that run. Latency figures are
        // wall-clock and go to stdout and the JSON report only — the
        // CSV stays counter-only so it is byte-identical at any --jobs.
        .with_recorder(Recorder::enabled())
}

fn replay_with_store(
    policy_name: &str,
    trace: &cache_sim::Trace,
    cache_pages: usize,
    window: u64,
    durability: Durability,
) -> std::io::Result<StorageReplayReport> {
    let label = format!("{policy_name}-{}", durability.label());
    let config = scratch_config(&label, cache_pages, durability);
    let dir = config.dir.clone();
    let store = PageStore::open(config)?;
    let mut policy = build_policy(policy_name, trace, cache_pages, window);
    let report = replay_storage(policy.as_mut(), &store, trace);
    drop(store);
    fs::remove_dir_all(&dir).ok();
    report
}

fn io_metrics(io: &IoStats, report: &StorageReplayReport) -> JsonValue {
    JsonValue::object([
        (
            "read_hit_ratio",
            JsonValue::num(report.result.read_hit_ratio()),
        ),
        ("buffer_hit_ratio", JsonValue::num(io.buffer_hit_ratio())),
        ("bytes_read", JsonValue::num(io.bytes_read as f64)),
        ("bytes_written", JsonValue::num(io.bytes_written as f64)),
        ("disk_reads", JsonValue::num(io.disk_reads as f64)),
        ("disk_writes", JsonValue::num(io.disk_writes as f64)),
        ("disk_bytes_read", JsonValue::num(io.disk_bytes_read as f64)),
        (
            "disk_bytes_written",
            JsonValue::num(io.disk_bytes_written as f64),
        ),
        (
            "disk_reads_per_request",
            JsonValue::num(report.disk_reads_per_request()),
        ),
        ("pages_flushed", JsonValue::num(io.pages_flushed as f64)),
        (
            "eviction_flushes",
            JsonValue::num(io.eviction_flushes as f64),
        ),
        ("wal_records", JsonValue::num(io.wal_records as f64)),
        ("wal_bytes", JsonValue::num(io.wal_bytes as f64)),
        ("data_syncs", JsonValue::num(io.data_syncs as f64)),
        ("wal_syncs", JsonValue::num(io.wal_syncs as f64)),
        ("group_commits", JsonValue::num(io.group_commits as f64)),
        ("fsyncs", JsonValue::num(io.fsyncs() as f64)),
        // Per-chunk replay latency (one sample per REPLAY_CHUNK requests),
        // from the store's `store.replay_chunk_us` histogram. Wall-clock, so
        // JSON-only: the CSV table is byte-diffed across --jobs values.
        ("latency_us", latency_metrics(report)),
    ])
}

fn latency_metrics(report: &StorageReplayReport) -> JsonValue {
    JsonValue::object([
        ("p50", JsonValue::num(report.latency.p50() as f64)),
        ("p95", JsonValue::num(report.latency.p95() as f64)),
        ("p99", JsonValue::num(report.latency.p99() as f64)),
        ("p999", JsonValue::num(report.latency.p999() as f64)),
        ("max", JsonValue::num(report.latency.max() as f64)),
        ("chunks", JsonValue::num(report.latency.count() as f64)),
    ])
}

fn push_io_row(table: &mut ResultTable, setup: &str, report: &StorageReplayReport) {
    let io = report.io;
    table.push_row(vec![
        setup.to_string(),
        format!("{:.1}%", report.result.read_hit_ratio() * 100.0),
        format!("{:.1}%", io.buffer_hit_ratio() * 100.0),
        io.disk_reads.to_string(),
        io.disk_writes.to_string(),
        io.pages_flushed.to_string(),
        io.wal_records.to_string(),
        io.wal_syncs.to_string(),
        io.group_commits.to_string(),
        io.fsyncs().to_string(),
    ]);
}

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Storage I/O experiment (disk-backed data plane), scale = {}\n",
        ctx.scale_label()
    );

    // The Figure 11 workload: three DB2 TPC-C clients over disjoint page
    // ranges, interleaved round-robin.
    let presets = TracePreset::TPCC;
    let mut traces = Vec::new();
    for (i, preset) in presets.iter().enumerate() {
        let trace = preset.build_with_offset(ctx.scale, (i as u64) * 100_000_000, 42 + i as u64);
        println!("generated {}", trace.summary());
        traces.push(trace);
    }
    let trace_refs: Vec<&cache_sim::Trace> = traces.iter().collect();
    let (combined, _clients) = interleave(&trace_refs);
    println!("interleaved: {}", combined.summary());

    let cache_pages = presets[0].reference_cache_size(ctx.scale);
    let window = window_for_trace(&combined);
    println!(
        "replaying {} requests against a {cache_pages}-frame store ({PAGE_SIZE}-byte pages)\n",
        combined.len()
    );

    let mut table = ResultTable::new(
        format!(
            "Storage I/O: {cache_pages}-frame disk-backed store, {}-byte pages, WAL on",
            PAGE_SIZE
        ),
        &[
            "setup",
            "read hits",
            "buffer hits",
            "disk reads",
            "disk writes",
            "pages flushed",
            "wal records",
            "wal syncs",
            "group commits",
            "fsyncs",
        ],
    );

    // Headline: CLIC vs LRU over the same buffered-durability store.
    let mut reports = Vec::new();
    for name in POLICIES {
        let report = replay_with_store(name, &combined, cache_pages, window, Durability::Buffered)?;
        push_io_row(&mut table, name, &report);
        reports.push((name, report));
    }

    // Durability sweep: the same CLIC replay at each WAL durability level.
    // The buffered point is the headline CLIC run; only the sync columns
    // change between levels, the policy statistics are identical.
    let clic = POLICIES[0];
    let mut durability_points: Vec<(Durability, StorageReplayReport)> = Vec::new();
    for durability in [deterministic_group_commit(), Durability::Strict] {
        let report = replay_with_store(clic, &combined, cache_pages, window, durability)?;
        assert_eq!(
            report.result.stats, reports[0].1.result.stats,
            "durability must not change policy decisions"
        );
        push_io_row(
            &mut table,
            &format!("{clic} {}", durability.label()),
            &report,
        );
        durability_points.push((durability, report));
    }

    // Shard sweep: CLIC split across per-shard stores, partitions replayed
    // concurrently on the harness's pool and merged in partition order.
    let pool = ctx.pool();
    let mut shard_points: Vec<(usize, StorageReplayReport)> = Vec::new();
    for shards in SHARD_COUNTS {
        let factory = (clic.to_string(), |capacity: usize| -> BoxedPolicy {
            build_policy(clic, &combined, capacity, window)
        });
        let config = scratch_config(
            &format!("{clic}-x{shards}"),
            cache_pages,
            Durability::Buffered,
        );
        let dir = config.dir.clone();
        let report =
            replay_storage_partitioned(&pool, &factory, &combined, cache_pages, shards, &config)?;
        fs::remove_dir_all(&dir).ok();
        push_io_row(&mut table, &format!("{clic} x{shards} shards"), &report);
        shard_points.push((shards, report));
    }

    table.emit(&ctx.out_dir, "storage_io")?;

    let clic_reads = reports[0].1.io.disk_reads;
    let lru_reads = reports[1].1.io.disk_reads;
    let clic_latency = &reports[0].1.latency;
    println!(
        "CLIC replay chunk latency p50/p95/p99/p999/max: {}/{}/{}/{}/{} us over {} chunks",
        clic_latency.p50(),
        clic_latency.p95(),
        clic_latency.p99(),
        clic_latency.p999(),
        clic_latency.max(),
        clic_latency.count(),
    );
    println!(
        "CLIC avoided {} disk reads vs LRU ({} vs {})",
        lru_reads as i64 - clic_reads as i64,
        clic_reads,
        lru_reads
    );

    let group_commit_fsyncs = durability_points[0].1.io.fsyncs();
    let strict_fsyncs = durability_points[1].1.io.fsyncs();
    assert!(
        group_commit_fsyncs < strict_fsyncs,
        "group commit must coalesce fsyncs below strict: {group_commit_fsyncs} vs {strict_fsyncs}"
    );
    println!(
        "group commit coalesced {} fsyncs away vs strict ({} vs {}, {} group commits)",
        strict_fsyncs - group_commit_fsyncs,
        group_commit_fsyncs,
        strict_fsyncs,
        durability_points[0].1.io.group_commits,
    );

    let mut metrics = vec![
        ("page_size", JsonValue::num(PAGE_SIZE as f64)),
        ("cache_pages", JsonValue::num(cache_pages as f64)),
        ("requests", JsonValue::num(combined.len() as f64)),
    ];
    for (name, report) in &reports {
        metrics.push((*name, io_metrics(&report.io, report)));
    }
    let durability_obj: Vec<(&str, JsonValue)> =
        std::iter::once(("buffered", io_metrics(&reports[0].1.io, &reports[0].1)))
            .chain(
                durability_points
                    .iter()
                    .map(|(d, report)| (d.label(), io_metrics(&report.io, report))),
            )
            .collect();
    metrics.push(("durability", JsonValue::object(durability_obj)));
    let shard_labels: Vec<String> = shard_points.iter().map(|(s, _)| s.to_string()).collect();
    let shard_obj: Vec<(&str, JsonValue)> = shard_points
        .iter()
        .zip(&shard_labels)
        .map(|((_, report), label)| (label.as_str(), io_metrics(&report.io, report)))
        .collect();
    metrics.push(("shards", JsonValue::object(shard_obj)));
    metrics.push((
        "clic_vs_lru_disk_reads_saved",
        JsonValue::num(lru_reads as f64 - clic_reads as f64),
    ));
    metrics.push((
        "group_commit_vs_strict_fsyncs_saved",
        JsonValue::num((strict_fsyncs - group_commit_fsyncs) as f64),
    ));
    ctx.emit_json("storage_io", JsonValue::object(metrics))
}
