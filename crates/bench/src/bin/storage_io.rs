//! Storage I/O experiment: the data plane behind the Figure 11 workload.
//!
//! The simulation experiments count hits and misses; this one moves real
//! bytes. The three DB2 TPC-C traces of Figure 11 are interleaved into one
//! multi-client trace and replayed through [`clic_store::replay_storage`]
//! against a disk-backed [`clic_store::PageStore`] — once with CLIC
//! (top-k, k = 100) adjudicating admission/eviction of the buffer frames
//! and once with the LRU baseline. Each policy gets a fresh store in a
//! temporary directory with the write-ahead log enabled and a deterministic
//! inline flush threshold (no background flusher thread), so every counter
//! in the output is bit-identical at any `--jobs` value.
//!
//! Reported per policy: bytes read/written at the cache interface, buffer
//! hit ratio, disk-tier reads and writes (the paper's cost metric, here
//! measured against a real file), flush and WAL overhead. The headline
//! JSON metric is `clic_vs_lru_disk_reads_saved`: how many disk reads CLIC's
//! hint-informed admission avoids relative to LRU on the same trace.
//!
//! Pages are 256 bytes rather than the store's 4 KiB default so the paper
//! scale stays within a few hundred MB of scratch disk; the headline
//! counters (disk reads, hit ratios, records) are size-independent and the
//! byte totals scale linearly with the page size.

use std::fs;
use std::path::PathBuf;

use cache_sim::IoStats;
use clic_bench::{build_policy, json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use clic_store::{replay_storage, PageStore, StorageReplayReport, StoreConfig};
use trace_gen::{interleave, TracePreset};

/// Small pages keep the scratch files modest at paper scale; see the
/// module docs for why this does not change the headline metrics.
const PAGE_SIZE: usize = 256;

/// The two admission/eviction policies compared over the same store setup.
const POLICIES: [&str; 2] = ["CLIC(k=100)", "LRU"];

fn replay_with_store(
    policy_name: &str,
    trace: &cache_sim::Trace,
    cache_pages: usize,
    window: u64,
) -> std::io::Result<StorageReplayReport> {
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "clic-storage-io-{}-{}",
        std::process::id(),
        policy_name.replace(['(', ')', '=', ','], "_")
    ));
    // A stale directory from a killed run would replay its WAL into this
    // run's counters; start from nothing.
    fs::remove_dir_all(&dir).ok();
    let config = StoreConfig::new(&dir, cache_pages)
        .with_page_size(PAGE_SIZE)
        .with_wal(true)
        // Deterministic write-back: flush inline once a quarter of the
        // frames are dirty instead of from a background thread.
        .with_flush_threshold((cache_pages / 4).max(1));
    let store = PageStore::open(config)?;
    let mut policy = build_policy(policy_name, trace, cache_pages, window);
    let report = replay_storage(policy.as_mut(), &store, trace);
    drop(store);
    fs::remove_dir_all(&dir).ok();
    report
}

fn io_metrics(io: &IoStats, report: &StorageReplayReport) -> JsonValue {
    JsonValue::object([
        (
            "read_hit_ratio",
            JsonValue::num(report.result.read_hit_ratio()),
        ),
        ("buffer_hit_ratio", JsonValue::num(io.buffer_hit_ratio())),
        ("bytes_read", JsonValue::num(io.bytes_read as f64)),
        ("bytes_written", JsonValue::num(io.bytes_written as f64)),
        ("disk_reads", JsonValue::num(io.disk_reads as f64)),
        ("disk_writes", JsonValue::num(io.disk_writes as f64)),
        ("disk_bytes_read", JsonValue::num(io.disk_bytes_read as f64)),
        (
            "disk_bytes_written",
            JsonValue::num(io.disk_bytes_written as f64),
        ),
        (
            "disk_reads_per_request",
            JsonValue::num(report.disk_reads_per_request()),
        ),
        ("pages_flushed", JsonValue::num(io.pages_flushed as f64)),
        (
            "eviction_flushes",
            JsonValue::num(io.eviction_flushes as f64),
        ),
        ("wal_records", JsonValue::num(io.wal_records as f64)),
        ("wal_bytes", JsonValue::num(io.wal_bytes as f64)),
    ])
}

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Storage I/O experiment (disk-backed data plane), scale = {}\n",
        ctx.scale_label()
    );

    // The Figure 11 workload: three DB2 TPC-C clients over disjoint page
    // ranges, interleaved round-robin.
    let presets = TracePreset::TPCC;
    let mut traces = Vec::new();
    for (i, preset) in presets.iter().enumerate() {
        let trace = preset.build_with_offset(ctx.scale, (i as u64) * 100_000_000, 42 + i as u64);
        println!("generated {}", trace.summary());
        traces.push(trace);
    }
    let trace_refs: Vec<&cache_sim::Trace> = traces.iter().collect();
    let (combined, _clients) = interleave(&trace_refs);
    println!("interleaved: {}", combined.summary());

    let cache_pages = presets[0].reference_cache_size(ctx.scale);
    let window = window_for_trace(&combined);
    println!(
        "replaying {} requests against a {cache_pages}-frame store ({PAGE_SIZE}-byte pages)\n",
        combined.len()
    );

    let mut table = ResultTable::new(
        format!(
            "Storage I/O: {cache_pages}-frame disk-backed store, {}-byte pages, WAL on",
            PAGE_SIZE
        ),
        &[
            "policy",
            "read hits",
            "buffer hits",
            "disk reads",
            "disk writes",
            "bytes read",
            "bytes written",
            "pages flushed",
            "eviction flushes",
            "wal records",
        ],
    );
    let mut reports = Vec::new();
    for name in POLICIES {
        let report = replay_with_store(name, &combined, cache_pages, window)?;
        let io = report.io;
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}%", report.result.read_hit_ratio() * 100.0),
            format!("{:.1}%", io.buffer_hit_ratio() * 100.0),
            io.disk_reads.to_string(),
            io.disk_writes.to_string(),
            io.bytes_read.to_string(),
            io.bytes_written.to_string(),
            io.pages_flushed.to_string(),
            io.eviction_flushes.to_string(),
            io.wal_records.to_string(),
        ]);
        reports.push((name, report));
    }
    table.emit(&ctx.out_dir, "storage_io")?;

    let clic_reads = reports[0].1.io.disk_reads;
    let lru_reads = reports[1].1.io.disk_reads;
    println!(
        "CLIC avoided {} disk reads vs LRU ({} vs {})",
        lru_reads as i64 - clic_reads as i64,
        clic_reads,
        lru_reads
    );

    let mut metrics = vec![
        ("page_size", JsonValue::num(PAGE_SIZE as f64)),
        ("cache_pages", JsonValue::num(cache_pages as f64)),
        ("requests", JsonValue::num(combined.len() as f64)),
    ];
    for (name, report) in &reports {
        metrics.push((*name, io_metrics(&report.io, report)));
    }
    metrics.push((
        "clic_vs_lru_disk_reads_saved",
        JsonValue::num(lru_reads as f64 - clic_reads as f64),
    ));
    ctx.emit_json("storage_io", JsonValue::object(metrics))
}
