//! Figure 7: server-cache read hit ratio of OPT, TQ, LRU, ARC and CLIC as a
//! function of the server cache size, for the three DB2 TPC-H traces
//! (`DB2_H80`, `DB2_H400`, `DB2_H720`).

use clic_bench::{comparison_table, run_policy_comparison, ExperimentContext, PAPER_POLICIES};
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Figure 7 reproduction (DB2 TPC-H policy comparison), scale = {}\n",
        ctx.scale_label()
    );
    for preset in TracePreset::DB2_TPCH {
        let trace = preset.build(ctx.scale);
        let summary = trace.summary();
        println!("generated {summary}");
        let sizes = preset.server_cache_sizes(ctx.scale);
        let points = run_policy_comparison(&trace, &sizes, &PAPER_POLICIES);
        let table = comparison_table(
            format!(
                "Figure 7 ({}): read hit ratio vs server cache size",
                preset.name()
            ),
            &points,
            &sizes,
            &PAPER_POLICIES,
        );
        table.emit(
            &ctx.out_dir,
            &format!("fig07_{}", preset.name().to_lowercase()),
        )?;
    }
    Ok(())
}
