//! Figure 10: effect of injected "noise" hint types on the read hit ratio.
//! `T` useless hint types (domain 10, Zipf z = 1) are appended to every
//! request of the DB2 TPC-C traces; CLIC runs with top-k tracking fixed at
//! k = 100 and the 180 K-page reference cache, so growing `T` dilutes the
//! statistics of the genuinely useful hint sets. The noise levels of each
//! trace are independent cells (each builds its own noisy trace), fanned
//! across worker threads (`--jobs`) via the pool's ordered `par_map`.

use cache_sim::simulate;
use clic_bench::{build_policy, json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use trace_gen::{inject_noise, NoiseConfig, TracePreset};

const NOISE_LEVELS: [u32; 4] = [0, 1, 2, 3];

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let pool = ctx.pool();
    println!(
        "Figure 10 reproduction (noise hint types), scale = {}, jobs = {}\n",
        ctx.scale_label(),
        pool.jobs()
    );

    let mut header = vec!["trace".to_string()];
    for &t in &NOISE_LEVELS {
        header.push(format!("T={t}"));
    }
    header.push("hint sets at T=3".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ResultTable::new(
        "Figure 10: read hit ratio vs number of injected noise hint types (k = 100)",
        &header_refs,
    );

    let mut metrics = Vec::new();
    for preset in TracePreset::TPCC {
        let base = preset.build(ctx.scale);
        println!("generated {}", base.summary());
        let cache = preset.reference_cache_size(ctx.scale);
        // Each noise level derives its own trace; the cells are independent,
        // so fan them out and keep the results in NOISE_LEVELS order.
        let cells = pool.par_map(&NOISE_LEVELS, |_, &t| {
            let noisy = inject_noise(&base, NoiseConfig::new(t));
            let window = window_for_trace(&noisy);
            let mut policy = build_policy("CLIC(k=100)", &noisy, cache, window);
            let result = simulate(policy.as_mut(), &noisy);
            (result.read_hit_ratio(), noisy.summary().distinct_hint_sets)
        });
        let mut row = vec![preset.name().to_string()];
        let mut per_level = Vec::new();
        for (&t, (ratio, _)) in NOISE_LEVELS.iter().zip(&cells) {
            row.push(format!("{:.1}%", ratio * 100.0));
            per_level.push((format!("T={t}"), JsonValue::num(*ratio)));
        }
        let final_hint_sets = cells.last().map(|(_, sets)| *sets).unwrap_or(0);
        row.push(final_hint_sets.to_string());
        table.push_row(row);
        metrics.push((preset.name().to_string(), JsonValue::Object(per_level)));
    }
    table.emit(&ctx.out_dir, "fig10_noise")?;
    ctx.emit_json("fig10_noise", JsonValue::Object(metrics))
}
