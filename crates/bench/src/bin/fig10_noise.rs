//! Figure 10: effect of injected "noise" hint types on the read hit ratio.
//! `T` useless hint types (domain 10, Zipf z = 1) are appended to every
//! request of the DB2 TPC-C traces; CLIC runs with top-k tracking fixed at
//! k = 100 and the 180 K-page reference cache, so growing `T` dilutes the
//! statistics of the genuinely useful hint sets.

use cache_sim::simulate;
use clic_bench::{build_policy, window_for_trace, ExperimentContext, ResultTable};
use trace_gen::{inject_noise, NoiseConfig, TracePreset};

const NOISE_LEVELS: [u32; 4] = [0, 1, 2, 3];

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Figure 10 reproduction (noise hint types), scale = {}\n",
        ctx.scale_label()
    );

    let mut header = vec!["trace".to_string()];
    for &t in &NOISE_LEVELS {
        header.push(format!("T={t}"));
    }
    header.push("hint sets at T=3".to_string());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ResultTable::new(
        "Figure 10: read hit ratio vs number of injected noise hint types (k = 100)",
        &header_refs,
    );

    for preset in TracePreset::TPCC {
        let base = preset.build(ctx.scale);
        println!("generated {}", base.summary());
        let cache = preset.reference_cache_size(ctx.scale);
        let mut row = vec![preset.name().to_string()];
        let mut final_hint_sets = 0;
        for &t in &NOISE_LEVELS {
            let noisy = inject_noise(&base, NoiseConfig::new(t));
            let window = window_for_trace(&noisy);
            let mut policy = build_policy("CLIC(k=100)", &noisy, cache, window);
            let result = simulate(policy.as_mut(), &noisy);
            row.push(format!("{:.1}%", result.read_hit_ratio() * 100.0));
            final_hint_sets = noisy.summary().distinct_hint_sets;
        }
        row.push(final_hint_sets.to_string());
        table.push_row(row);
    }
    table.emit(&ctx.out_dir, "fig10_noise")
}
