//! Figure 3: hint-set caching priority versus frequency of occurrence for the
//! DB2_C60 trace. Each row is one distinct hint set (the paper plots these as
//! a scatter); the labels let a reader verify the headline observations, e.g.
//! that STOCK-table replacement writes rank far above ORDER_LINE-table reads.

use clic_bench::{json::JsonValue, ExperimentContext, ResultTable};
use clic_core::analyze_trace;
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Figure 3 reproduction (hint-set priorities, DB2_C60), scale = {}\n",
        ctx.scale_label()
    );

    let trace = TracePreset::Db2C60.build(ctx.scale);
    println!("generated {}", trace.summary());
    let mut reports = analyze_trace(&trace);
    reports.sort_by(|a, b| b.priority.partial_cmp(&a.priority).unwrap());

    let mut table = ResultTable::new(
        "Figure 3: hint-set priority vs frequency (DB2_C60)",
        &[
            "priority Pr(H)",
            "frequency",
            "fhit(H)",
            "D(H)",
            "N(H)",
            "Nr(H)",
            "hint set",
        ],
    );
    for r in &reports {
        table.push_row(vec![
            format!("{:.8}", r.priority),
            format!("{:.6}", r.frequency),
            format!("{:.4}", r.read_hit_rate),
            format!("{:.1}", r.mean_distance),
            r.requests.to_string(),
            r.read_rereferences.to_string(),
            r.label.clone(),
        ]);
    }
    table.emit(&ctx.out_dir, "fig03_hint_priorities")?;

    // Print the paper's two annotated observations explicitly.
    let stock_repl = reports
        .iter()
        .find(|r| r.label.contains("object ID=8") && r.label.contains("request type=3"));
    let orderline_read = reports
        .iter()
        .find(|r| r.label.contains("object ID=6") && r.label.contains("request type=0"));
    if let (Some(stock), Some(ol)) = (stock_repl, orderline_read) {
        println!(
            "STOCK replacement writes: Pr = {:.8} (freq {:.4}); ORDER_LINE reads: Pr = {:.8} (freq {:.4})",
            stock.priority, stock.frequency, ol.priority, ol.frequency
        );
        println!(
            "=> STOCK replacement writes are the better caching opportunity: {}",
            stock.priority > ol.priority
        );
    }
    ctx.emit_json(
        "fig03_hint_priorities",
        JsonValue::object([
            ("hint_sets", JsonValue::num(reports.len() as f64)),
            (
                "top_priority",
                reports
                    .first()
                    .map(|r| JsonValue::num(r.priority))
                    .unwrap_or(JsonValue::Null),
            ),
        ]),
    )
}
