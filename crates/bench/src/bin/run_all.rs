//! Runs every experiment binary (the whole evaluation section), optionally
//! several at a time.
//!
//! `--jobs N` (default: `CLIC_JOBS` env, else available parallelism) runs
//! the figure/table experiment binaries as N concurrent child processes
//! through the same deterministic ordered executor the binaries use
//! internally — each concurrent child runs its own grid with `--jobs 1` so
//! the machine is not oversubscribed, and since every grid is deterministic
//! the results are bit-identical to a serial run. The timing-sensitive
//! microbenches (`server_throughput`, `server_latency`, `access_hotpath`)
//! always run exclusively at the end, one at a time, with the full
//! `--jobs` count forwarded; their CSVs are excluded from the verification
//! gate's determinism diff (`scripts/verify.sh`), since what they measure
//! is wall-clock behavior, not a deterministic grid.
//!
//! `--json PATH` additionally collects every child's machine-readable report
//! (each child writes a fragment next to `PATH`) into one combined file —
//! conventionally `BENCH_results.json` — with per-experiment wall time, so
//! the perf trajectory is tracked across PRs. Remaining arguments
//! (`--scale`, `--quick`, `--out-dir`) are forwarded to every child.
//!
//! Per-experiment wall-clock timing is always printed in the final summary,
//! whether or not a JSON report was requested.

use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;

use cache_sim::ThreadPool;
use clic_bench::json::JsonValue;

/// Experiments whose grids are deterministic and cheap to interleave: run
/// concurrently under `--jobs`.
const PARALLEL_EXPERIMENTS: [&str; 12] = [
    "table_fig2",
    "table_fig5",
    "fig03_hint_priorities",
    "fig06_tpcc_policies",
    "fig07_tpch_policies",
    "fig08_mysql_policies",
    "fig09_topk",
    "fig10_noise",
    "fig11_multiclient",
    "ablation_params",
    "ablation_generalization",
    "storage_io",
];

/// Timing-sensitive microbenches: always run exclusively, after everything
/// else, so concurrent siblings cannot pollute their measurements.
/// `chaos_smoke` rides along because its open-loop phase asserts a bounded
/// error fraction under offered load — a noisy neighbour could push
/// scheduling jitter into the latency path it measures.
const EXCLUSIVE_EXPERIMENTS: [&str; 4] = [
    "server_throughput",
    "server_latency",
    "access_hotpath",
    "chaos_smoke",
];

struct ExperimentRun {
    name: &'static str,
    ok: bool,
    wall_time_s: f64,
    /// The child's `--json` fragment, read back verbatim (valid JSON).
    report: Option<String>,
}

fn main() {
    // Consume --jobs and --json; forward everything else to the children.
    let mut forwarded: Vec<String> = Vec::new();
    let mut jobs = cache_sim::default_jobs();
    let mut json_path: Option<PathBuf> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" => {
                i += 1;
                jobs = clic_bench::parse_jobs_arg(args.get(i).expect("--jobs requires a value"));
            }
            "--json" => {
                i += 1;
                json_path = Some(PathBuf::from(args.get(i).expect("--json requires a value")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: run_all [--scale smoke|default|paper] [--quick] [--out-dir DIR] \
                     [--jobs N] [--json PATH]"
                );
                return;
            }
            other => forwarded.push(other.to_string()),
        }
        i += 1;
    }

    let self_path = std::env::current_exe().expect("current executable path");
    let bin_dir = self_path
        .parent()
        .expect("executable directory")
        .to_path_buf();
    // Children write their JSON fragments into a sibling directory of the
    // combined report; run_all embeds them verbatim afterwards. The
    // directory is recreated from scratch so a fragment left behind by an
    // interrupted earlier run can never masquerade as a failed child's
    // report.
    let fragments_dir = json_path.as_ref().map(|path| {
        let dir = path.with_extension("fragments");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("fragment directory created");
        dir
    });
    let started = Instant::now();

    // `stream`: when the child runs alone (serial phase 1 or the exclusive
    // microbenches) its stdio is inherited, so long default/paper-scale runs
    // show live progress exactly as before. Concurrent children instead have
    // their output captured and emitted as one block with a single locked
    // write, so workers cannot interleave inside a block.
    let launch = |experiment: &'static str, child_jobs: usize, stream: bool| -> ExperimentRun {
        let mut command = Command::new(bin_dir.join(experiment));
        command.args(&forwarded);
        command.args(["--jobs", &child_jobs.to_string()]);
        let fragment = fragments_dir
            .as_ref()
            .map(|dir| dir.join(format!("{experiment}.json")));
        if let Some(fragment) = &fragment {
            command.arg("--json").arg(fragment);
        }
        let child_started = Instant::now();
        let ok = if stream {
            println!("\n===== {experiment} =====");
            let status = command
                .status()
                .unwrap_or_else(|e| panic!("failed to launch {experiment}: {e}"));
            if !status.success() {
                eprintln!("{experiment} exited with {status}");
            }
            status.success()
        } else {
            let output = command
                .output()
                .unwrap_or_else(|e| panic!("failed to launch {experiment}: {e}"));
            let wall_time_s = child_started.elapsed().as_secs_f64();
            let mut block = format!("\n===== {experiment} ({wall_time_s:.1}s) =====\n");
            block.push_str(&String::from_utf8_lossy(&output.stdout));
            let stderr = String::from_utf8_lossy(&output.stderr);
            if !stderr.is_empty() {
                block.push_str("--- stderr ---\n");
                block.push_str(&stderr);
            }
            if !output.status.success() {
                block.push_str(&format!("{experiment} exited with {}\n", output.status));
            }
            {
                use std::io::Write as _;
                let mut stdout = std::io::stdout().lock();
                let _ = stdout.write_all(block.as_bytes());
            }
            output.status.success()
        };
        let report = fragment.and_then(|path| std::fs::read_to_string(path).ok());
        ExperimentRun {
            name: experiment,
            ok,
            wall_time_s: child_started.elapsed().as_secs_f64(),
            report,
        }
    };

    // Phase 1: the deterministic experiments, up to `jobs` at a time (each
    // child's own grid pinned to one worker so total load stays ~= jobs).
    let pool = ThreadPool::new(jobs);
    println!(
        "running {} experiments with --jobs {jobs}",
        PARALLEL_EXPERIMENTS.len() + EXCLUSIVE_EXPERIMENTS.len()
    );
    let mut runs = pool.par_map(&PARALLEL_EXPERIMENTS, |_, &experiment| {
        launch(experiment, 1, jobs == 1)
    });
    // Phase 2: the microbenches, exclusively.
    for experiment in EXCLUSIVE_EXPERIMENTS {
        runs.push(launch(experiment, jobs, true));
    }
    let total_wall_time_s = started.elapsed().as_secs_f64();

    println!("\n===== per-experiment wall time =====");
    for run in &runs {
        println!(
            "{:<28} {:>8.1}s  {}",
            run.name,
            run.wall_time_s,
            if run.ok { "ok" } else { "FAILED" }
        );
    }
    println!(
        "{:<28} {total_wall_time_s:>8.1}s  (total, --jobs {jobs})",
        "all experiments"
    );

    if let Some(path) = &json_path {
        let combined = JsonValue::object([
            ("suite", JsonValue::str("run_all")),
            ("jobs", JsonValue::num(jobs as f64)),
            ("total_wall_time_s", JsonValue::num(total_wall_time_s)),
            (
                "experiments",
                JsonValue::Array(
                    runs.iter()
                        .map(|run| {
                            JsonValue::object([
                                ("name", JsonValue::str(run.name)),
                                ("ok", JsonValue::Bool(run.ok)),
                                ("wall_time_s", JsonValue::num(run.wall_time_s)),
                                (
                                    "report",
                                    run.report
                                        .as_ref()
                                        .map(|text| JsonValue::Raw(text.trim().to_string()))
                                        .unwrap_or(JsonValue::Null),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        std::fs::write(path, format!("{combined}\n")).expect("combined report written");
        if let Some(dir) = &fragments_dir {
            std::fs::remove_dir_all(dir).ok();
        }
        println!("combined JSON report: {}", path.display());
    }

    let failures: Vec<&str> = runs.iter().filter(|r| !r.ok).map(|r| r.name).collect();
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nexperiments failed: {failures:?}");
        std::process::exit(1);
    }
}
