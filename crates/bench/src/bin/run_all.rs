//! Runs every experiment binary in sequence (the whole evaluation section).
//!
//! Equivalent to invoking each `table_*`, `fig*` and `ablation_*` binary with
//! the same arguments; results land in the chosen output directory.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = [
        "table_fig2",
        "table_fig5",
        "fig03_hint_priorities",
        "fig06_tpcc_policies",
        "fig07_tpch_policies",
        "fig08_mysql_policies",
        "fig09_topk",
        "fig10_noise",
        "fig11_multiclient",
        "ablation_params",
        "ablation_generalization",
        "server_throughput",
        "access_hotpath",
    ];
    let self_path = std::env::current_exe().expect("current executable path");
    let bin_dir = self_path.parent().expect("executable directory");
    let mut failures = Vec::new();
    for experiment in experiments {
        println!("\n===== {experiment} =====");
        let status = Command::new(bin_dir.join(experiment))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {experiment}: {e}"));
        if !status.success() {
            eprintln!("{experiment} exited with {status}");
            failures.push(experiment);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nexperiments failed: {failures:?}");
        std::process::exit(1);
    }
}
