//! Figure 5 (table): the inventory of I/O request traces — database size,
//! DBMS buffer size, request count, distinct hint sets and distinct pages —
//! for all eight presets.

use clic_bench::{ExperimentContext, ResultTable};
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Figure 5 reproduction (trace inventory), scale = {}\n",
        ctx.scale_label()
    );

    let mut table = ResultTable::new(
        "Figure 5: I/O request traces",
        &[
            "trace",
            "DB size (pages)",
            "DBMS buffer (pages)",
            "requests",
            "reads",
            "writes",
            "distinct hint sets",
            "distinct pages",
        ],
    );
    for preset in TracePreset::ALL {
        let trace = preset.build(ctx.scale);
        let s = trace.summary();
        table.push_row(vec![
            preset.name().to_string(),
            preset.database_pages(ctx.scale).to_string(),
            preset.buffer_pages(ctx.scale).to_string(),
            s.requests.to_string(),
            s.reads.to_string(),
            s.writes.to_string(),
            s.distinct_hint_sets.to_string(),
            s.distinct_pages.to_string(),
        ]);
        println!("built {}", preset.name());
    }
    table.emit(&ctx.out_dir, "table_fig5")
}
