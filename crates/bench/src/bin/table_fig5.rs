//! Figure 5 (table): the inventory of I/O request traces — database size,
//! DBMS buffer size, request count, distinct hint sets and distinct pages —
//! for all eight presets. Building and summarizing the eight traces is the
//! slow part, so the presets run as cells of the pool's ordered `par_map`.

use clic_bench::{json::JsonValue, ExperimentContext, ResultTable};
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let pool = ctx.pool();
    println!(
        "Figure 5 reproduction (trace inventory), scale = {}, jobs = {}\n",
        ctx.scale_label(),
        pool.jobs()
    );

    let mut table = ResultTable::new(
        "Figure 5: I/O request traces",
        &[
            "trace",
            "DB size (pages)",
            "DBMS buffer (pages)",
            "requests",
            "reads",
            "writes",
            "distinct hint sets",
            "distinct pages",
        ],
    );
    let summaries = pool.par_map(&TracePreset::ALL, |_, preset| {
        let trace = preset.build(ctx.scale);
        trace.summary()
    });
    let mut metrics = Vec::new();
    for (preset, s) in TracePreset::ALL.iter().zip(&summaries) {
        table.push_row(vec![
            preset.name().to_string(),
            preset.database_pages(ctx.scale).to_string(),
            preset.buffer_pages(ctx.scale).to_string(),
            s.requests.to_string(),
            s.reads.to_string(),
            s.writes.to_string(),
            s.distinct_hint_sets.to_string(),
            s.distinct_pages.to_string(),
        ]);
        println!("built {}", preset.name());
        metrics.push((
            preset.name().to_string(),
            JsonValue::object([
                ("requests", JsonValue::num(s.requests as f64)),
                (
                    "distinct_hint_sets",
                    JsonValue::num(s.distinct_hint_sets as f64),
                ),
                ("distinct_pages", JsonValue::num(s.distinct_pages as f64)),
            ]),
        ));
    }
    table.emit(&ctx.out_dir, "table_fig5")?;
    ctx.emit_json("table_fig5", JsonValue::Object(metrics))
}
