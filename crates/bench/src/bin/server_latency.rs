//! Server latency under open-loop load: latency-vs-offered-load curves
//! for the network front-end.
//!
//! The closed-loop `server_throughput` experiment measures capacity; this
//! one measures *queueing*. A seeded open-loop Poisson generator
//! (`clic_server::openloop`) offers load to a store-backed server behind
//! the event-driven TCP front-end at several fixed arrival rates, twice
//! per rate: once with buffered durability and once with group commit.
//! Latency is measured from each request's **scheduled** send time — free
//! of coordinated omission — so the percentiles include every queueing
//! episode the offered load caused, and the curves bend upward exactly
//! where the offered load approaches the served capacity.
//!
//! Flags: the shared experiment flags (`--scale smoke|default|paper`,
//! `--quick`, `--out-dir DIR`, `--json PATH`, `--jobs N`). The run is
//! timing-sensitive, so `run_all` schedules it exclusively and the
//! verification gate excludes its CSV from the determinism diff.

use clic_bench::{json::JsonValue, ExperimentContext, ResultTable};
use clic_server::{
    run_open_loop, Durability, NetOptions, NetServer, OpenLoopConfig, OpenLoopReport, Server,
    ServerConfig, StoreConfig, DEFAULT_PAGE_SIZE,
};
use trace_gen::PresetScale;

/// One measured point on the latency-vs-offered-load curve.
struct CurvePoint {
    durability: &'static str,
    report: OpenLoopReport,
}

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Server latency vs offered load (open loop), scale = {}\n",
        ctx.scale_label()
    );

    // Offered loads (requests/s) and per-rate run length by scale.
    let (rates, duration_s): (&[f64], f64) = match ctx.scale {
        PresetScale::Smoke => (&[2_000.0, 5_000.0, 10_000.0], 0.3),
        PresetScale::Default => (&[5_000.0, 20_000.0, 50_000.0], 1.0),
        PresetScale::Paper => (&[10_000.0, 50_000.0, 100_000.0, 200_000.0], 2.0),
    };
    let durabilities = [
        ("buffered", Durability::Buffered),
        ("group-commit", Durability::group_commit()),
    ];
    let cache_pages = 4_096;
    let pages = 1u64 << 15;
    let shards = std::thread::available_parallelism()
        .map(|p| p.get().clamp(2, 8))
        .unwrap_or(4);
    println!(
        "server: {cache_pages}-page cache, {shards} shards, {pages}-page universe, \
         {DEFAULT_PAGE_SIZE}-byte pages, write fraction 0.25\n"
    );

    let mut curve: Vec<CurvePoint> = Vec::new();
    for (durability_label, durability) in durabilities {
        for &rate in rates {
            let dir = std::env::temp_dir().join(format!(
                "clic-server-latency-{}-{durability_label}-{rate}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir)?;
            let config = ServerConfig::new(cache_pages)
                .with_shards(shards)
                .with_store(StoreConfig::new(&dir, cache_pages).with_durability(durability));
            let net = NetServer::start(Server::start(config), NetOptions::default())?;
            let addr = net.tcp_addr().expect("tcp front-end enabled");
            let open_loop = OpenLoopConfig {
                rate,
                requests: ((rate * duration_s) as u64).max(500),
                seed: 42,
                pages,
                payload: Some(DEFAULT_PAGE_SIZE),
                ..OpenLoopConfig::default()
            };
            let report = run_open_loop(addr, &open_loop)?;
            net.shutdown()?;
            std::fs::remove_dir_all(&dir).ok();
            println!(
                "{durability_label:>12} @ {rate:>9.0} req/s offered: \
                 {:>9.0} achieved, p50 {} us, p99 {} us, p999 {} us",
                report.achieved_rps,
                report.latency.p50_us,
                report.latency.p99_us,
                report.latency.p999_us
            );
            curve.push(CurvePoint {
                durability: durability_label,
                report,
            });
        }
    }

    let mut table = ResultTable::new(
        format!(
            "Server latency vs offered load: {shards} shards, {cache_pages}-page cache, \
             open-loop Poisson arrivals, latency from scheduled send (no coordinated omission)"
        ),
        &[
            "durability",
            "offered req/s",
            "achieved req/s",
            "completed",
            "p50 us",
            "p95 us",
            "p99 us",
            "p999 us",
            "max us",
        ],
    );
    for point in &curve {
        let r = &point.report;
        table.push_row(vec![
            point.durability.into(),
            format!("{:.0}", r.offered_rps),
            format!("{:.0}", r.achieved_rps),
            format!("{}", r.completed),
            format!("{}", r.latency.p50_us),
            format!("{}", r.latency.p95_us),
            format!("{}", r.latency.p99_us),
            format!("{}", r.latency.p999_us),
            format!("{}", r.latency.max_us),
        ]);
    }
    table.emit(&ctx.out_dir, "server_latency")?;

    let points: Vec<JsonValue> = curve
        .iter()
        .map(|point| {
            let r = &point.report;
            JsonValue::object([
                ("durability", JsonValue::str(point.durability)),
                ("offered_rps", JsonValue::num(r.offered_rps)),
                ("achieved_rps", JsonValue::num(r.achieved_rps)),
                ("sent", JsonValue::num(r.sent as f64)),
                ("completed", JsonValue::num(r.completed as f64)),
                ("elapsed_s", JsonValue::num(r.elapsed.as_secs_f64())),
                ("mean_us", JsonValue::num(r.latency.mean_us)),
                ("p50_us", JsonValue::num(r.latency.p50_us as f64)),
                ("p95_us", JsonValue::num(r.latency.p95_us as f64)),
                ("p99_us", JsonValue::num(r.latency.p99_us as f64)),
                ("p999_us", JsonValue::num(r.latency.p999_us as f64)),
                ("max_us", JsonValue::num(r.latency.max_us as f64)),
            ])
        })
        .collect();
    ctx.emit_json(
        "server_latency",
        JsonValue::object([
            ("shards", JsonValue::num(shards as f64)),
            ("cache_pages", JsonValue::num(cache_pages as f64)),
            ("page_universe", JsonValue::num(pages as f64)),
            ("write_fraction", JsonValue::num(0.25)),
            ("latency_vs_load", JsonValue::Array(points)),
        ]),
    )
}
