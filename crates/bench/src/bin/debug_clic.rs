//! Diagnostic tool (not a paper figure): dissects CLIC's behaviour on one
//! preset trace — offline hint-set analysis, on-line vs oracle-fed
//! priorities, and cache composition — to understand where hits come from.

use cache_sim::{policies::Lru, simulate};
use clic_bench::window_for_trace;
use clic_core::{analyze_trace, Clic, ClicConfig};
use trace_gen::{PresetScale, TracePreset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let preset = args
        .first()
        .and_then(|s| TracePreset::from_name(s))
        .unwrap_or(TracePreset::Db2C300);
    let cache = args
        .get(1)
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1800);
    let trace = preset.build(PresetScale::Smoke);
    println!("{}", trace.summary());

    // Offline analysis (exact N, Nr, D over the whole trace).
    let reports = analyze_trace(&trace);
    println!("\n== offline hint analysis (top 20 by priority, freq > 0.1%) ==");
    let mut by_priority = reports.clone();
    by_priority.sort_by(|a, b| b.priority.partial_cmp(&a.priority).unwrap());
    for r in by_priority.iter().filter(|r| r.frequency > 0.001).take(20) {
        println!(
            "  Pr={:<12.6} fhit={:<6.3} D={:<12.1} freq={:<8.5} {}",
            r.priority, r.read_hit_rate, r.mean_distance, r.frequency, r.label
        );
    }

    // LRU baseline.
    let mut lru = Lru::new(cache);
    let lru_res = simulate(&mut lru, &trace);
    println!("\nLRU      read hit ratio: {:.3}", lru_res.read_hit_ratio());

    // On-line CLIC.
    let window = window_for_trace(&trace);
    let mut clic = Clic::new(cache, ClicConfig::default().with_window(window));
    let clic_res = simulate(&mut clic, &trace);
    println!(
        "CLIC     read hit ratio: {:.3} (window {window}, {} windows)",
        clic_res.read_hit_ratio(),
        clic.windows_completed()
    );
    println!("  final cache composition (top 10):");
    for (hint, count) in clic.cache_composition().into_iter().take(10) {
        println!(
            "    {:>6} pages  Pr={:<12.6} {}",
            count,
            clic.priority_of(hint),
            trace.catalog.describe(hint)
        );
    }

    // CLIC fed with oracle (whole-trace) priorities and no re-evaluation.
    let mut oracle_clic = Clic::new(cache, ClicConfig::default().with_window(u64::MAX / 2));
    oracle_clic.preload_priorities(reports.iter().map(|r| (r.hint, r.priority)));
    let oracle_res = simulate(&mut oracle_clic, &trace);
    println!(
        "CLIC(oracle stats) read hit ratio: {:.3}",
        oracle_res.read_hit_ratio()
    );
    println!("  final cache composition (top 10):");
    for (hint, count) in oracle_clic.cache_composition().into_iter().take(10) {
        println!(
            "    {:>6} pages  Pr={:<12.6} {}",
            count,
            oracle_clic.priority_of(hint),
            trace.catalog.describe(hint)
        );
    }
}
