//! Figure 9: effect of top-k hint-set filtering on the server-cache read hit
//! ratio. CLIC is restricted to tracking only the `k` most frequent hint sets
//! (Space-Saving based), with `k` swept from 1 to 100, on the DB2 TPC-C and
//! DB2 TPC-H traces with the paper's 180 K-page reference cache.

use cache_sim::simulate;
use clic_bench::{build_policy, window_for_trace, ExperimentContext, ResultTable};
use trace_gen::TracePreset;

const K_VALUES: [usize; 8] = [1, 2, 5, 10, 20, 50, 100, usize::MAX];

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Figure 9 reproduction (top-k hint filtering), scale = {}\n",
        ctx.scale_label()
    );

    for (group_name, presets, stem) in [
        ("DB2 TPC-C", &TracePreset::TPCC[..], "fig09_tpcc"),
        ("DB2 TPC-H", &TracePreset::DB2_TPCH[..], "fig09_tpch"),
        ("MySQL TPC-H", &TracePreset::MYSQL[..], "fig09_mysql"),
    ] {
        let mut header = vec!["trace".to_string(), "hint sets".to_string()];
        for &k in &K_VALUES {
            if k == usize::MAX {
                header.push("all".to_string());
            } else {
                header.push(format!("k={k}"));
            }
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = ResultTable::new(
            format!("Figure 9 ({group_name}): read hit ratio vs number of tracked hint sets"),
            &header_refs,
        );
        for &preset in presets {
            let trace = preset.build(ctx.scale);
            let summary = trace.summary();
            println!("generated {summary}");
            let cache = preset.reference_cache_size(ctx.scale);
            let window = window_for_trace(&trace);
            let mut row = vec![
                preset.name().to_string(),
                summary.distinct_hint_sets.to_string(),
            ];
            for &k in &K_VALUES {
                let name = if k == usize::MAX {
                    "CLIC".to_string()
                } else {
                    format!("CLIC(k={k})")
                };
                let mut policy = build_policy(&name, &trace, cache, window);
                let result = simulate(policy.as_mut(), &trace);
                row.push(format!("{:.1}%", result.read_hit_ratio() * 100.0));
            }
            table.push_row(row);
        }
        table.emit(&ctx.out_dir, stem)?;
    }
    Ok(())
}
