//! Figure 9: effect of top-k hint-set filtering on the server-cache read hit
//! ratio. CLIC is restricted to tracking only the `k` most frequent hint sets
//! (Space-Saving based), with `k` swept from 1 to 100, on the DB2 TPC-C and
//! DB2 TPC-H traces with the paper's 180 K-page reference cache. Each
//! trace's k-sweep is fanned across worker threads (`--jobs`) through the
//! deterministic parallel executor.

use cache_sim::compare_policies;
use clic_bench::{build_policy, json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use trace_gen::TracePreset;

const K_VALUES: [usize; 8] = [1, 2, 5, 10, 20, 50, 100, usize::MAX];

fn policy_name(k: usize) -> String {
    if k == usize::MAX {
        "CLIC".to_string()
    } else {
        format!("CLIC(k={k})")
    }
}

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let pool = ctx.pool();
    println!(
        "Figure 9 reproduction (top-k hint filtering), scale = {}, jobs = {}\n",
        ctx.scale_label(),
        pool.jobs()
    );

    let mut metrics = Vec::new();
    for (group_name, presets, stem) in [
        ("DB2 TPC-C", &TracePreset::TPCC[..], "fig09_tpcc"),
        ("DB2 TPC-H", &TracePreset::DB2_TPCH[..], "fig09_tpch"),
        ("MySQL TPC-H", &TracePreset::MYSQL[..], "fig09_mysql"),
    ] {
        let mut header = vec!["trace".to_string(), "hint sets".to_string()];
        for &k in &K_VALUES {
            if k == usize::MAX {
                header.push("all".to_string());
            } else {
                header.push(format!("k={k}"));
            }
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = ResultTable::new(
            format!("Figure 9 ({group_name}): read hit ratio vs number of tracked hint sets"),
            &header_refs,
        );
        for &preset in presets {
            let trace = preset.build(ctx.scale);
            let summary = trace.summary();
            println!("generated {summary}");
            let cache = preset.reference_cache_size(ctx.scale);
            let window = window_for_trace(&trace);
            // One independent simulation per k, submitted as a grid.
            let results = compare_policies(&pool, &trace, &K_VALUES, |&k| {
                build_policy(&policy_name(k), &trace, cache, window)
            });
            let mut row = vec![
                preset.name().to_string(),
                summary.distinct_hint_sets.to_string(),
            ];
            let mut per_k = Vec::new();
            for (&k, result) in K_VALUES.iter().zip(&results) {
                row.push(format!("{:.1}%", result.read_hit_ratio() * 100.0));
                let label = if k == usize::MAX {
                    "all".to_string()
                } else {
                    k.to_string()
                };
                per_k.push((label, JsonValue::num(result.read_hit_ratio())));
            }
            table.push_row(row);
            metrics.push((preset.name().to_string(), JsonValue::Object(per_k)));
        }
        table.emit(&ctx.out_dir, stem)?;
    }
    ctx.emit_json("fig09_topk", JsonValue::Object(metrics))
}
