//! Chaos gate (`scripts/verify.sh --smoke-chaos`, part of the default
//! full run).
//!
//! Everything else in the verification suite checks that CLIC works when
//! the world cooperates; this gate checks that it *degrades* when the
//! world does not. A seeded [`FaultInjector`] tears WAL appends, fails
//! fsyncs, drops accepted connections, resets readable ones, and cuts
//! socket writes short — and the gate asserts the contract that survives:
//!
//! * **Phase A (durability under fire, run twice):** a `Strict` store
//!   absorbs a write storm while the injector fails ~10% of WAL appends
//!   and fsyncs. After a simulated kernel crash (the WAL truncated to its
//!   synced prefix) a fault-free reopen must recover *bit-identical*
//!   contents for every write the model says survived — in particular
//!   nothing acknowledged is ever lost. The phase runs twice with the
//!   same seed and must produce identical acknowledgement sequences,
//!   injector counts, synced prefixes, and recovered bytes: a chaos
//!   failure is replayable from its seed alone. A pure replay of the
//!   decision stream reconciles the injector's own counts and proves the
//!   schedule contained at least one torn write and one failed fsync.
//! * **Phase B (degradation under store faults):** the TCP front-end runs
//!   with load shedding on over a store whose WAL appends occasionally
//!   fail — the network itself is clean, so *every* scheduled request
//!   must be answered: mostly successes, at least one typed `Io` error
//!   (the store fault surfacing end-to-end as an `OP_ERR` frame), and a
//!   bounded error fraction. A 256-op pipelined burst through the 64-slot
//!   window must come back with explicit `Busy` errors rather than
//!   stalling, and the server's `server.shed_busy` counter must account
//!   for them. Shutdown stays clean.
//! * **Phase C (a hostile network):** a second front-end runs with
//!   network faults armed — accepts dropped, readable connections reset,
//!   socket writes torn or failed. A retrying client ([`RetryPolicy`])
//!   must ride out every injected failure, and the gate requires at
//!   least one accept drop, one connection reset, and one send fault
//!   demonstrably fired before shutdown, which again stays clean.
//!
//! Failures panic, so a nonzero exit is the gate tripping.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::time::Duration;

use cache_sim::PageId;
use clic_bench::json::JsonValue;
use clic_bench::{ExperimentContext, ResultTable};
use clic_server::{
    run_open_loop, BlockingClient, Durability, ErrorCode, FaultInjector, FaultPoint, NetOptions,
    NetServer, OpenLoopConfig, RetryPolicy, Server, ServerConfig, ServerRequest, StoreConfig,
};
use clic_store::{page_payload, InjectedFault, PageStore, ReadSource};
use trace_gen::PresetScale;

const PAGE_SIZE: usize = 64;
const CHAOS_SEED: u64 = 0xC0FFEE;

/// Counts in this gate fit `f64` exactly; the JSON writer wants one.
fn num(value: u64) -> JsonValue {
    JsonValue::num(value as f64)
}

/// One Phase A run: what the driver observed and what recovery produced.
#[derive(Debug, PartialEq, Eq)]
struct StormOutcome {
    /// Per-write acknowledgement (`stage` returned `Ok`).
    acked: Vec<bool>,
    /// The injector's (point, ops, injected) triples.
    counts: Vec<(FaultPoint, u64, u64)>,
    /// Records that reached the WAL (appended, even if their sync failed).
    appended: Vec<(u64, u8)>,
    /// WAL bytes known durable at crash time.
    synced_len: u64,
    /// Bytes recovered per page after the kernel-crash cut, fault-free.
    recovered: BTreeMap<u64, Vec<u8>>,
}

/// Deterministic write storm: `ops` tagged writes against a `Strict`
/// store while WAL appends and fsyncs fail at ~10% each, then a kernel
/// crash (WAL truncated to the synced prefix) and a fault-free recovery.
fn durability_storm(dir: &Path, ops: &[(u64, u8)]) -> io::Result<StormOutcome> {
    std::fs::remove_dir_all(dir).ok();
    let fault = FaultInjector::seeded(CHAOS_SEED)
        .with_rate(FaultPoint::WalAppend, 0.10)
        .with_rate(FaultPoint::WalSync, 0.10);
    // Frames cover the page universe: no evictions, so recovery is
    // exactly WAL replay.
    let config = StoreConfig::new(dir, 64)
        .with_page_size(PAGE_SIZE)
        .with_durability(Durability::Strict)
        .with_fault_injector(fault.clone());
    let mut acked = Vec::with_capacity(ops.len());
    let mut appended = Vec::new();
    let (synced_len, total_len) = {
        let store = PageStore::open(config)?;
        for &(page, tag) in ops {
            match store.stage(PageId(page), &[tag; PAGE_SIZE]) {
                Ok(()) => {
                    acked.push(true);
                    appended.push((page, tag));
                }
                Err(err) => {
                    acked.push(false);
                    let msg = err.to_string();
                    assert!(
                        msg.contains(clic_store::INJECTED_FAULT),
                        "only injected faults may fail the storm: {msg}"
                    );
                    // A failed fsync still appended its record; a torn or
                    // failed append never advanced the WAL.
                    if msg.contains(FaultPoint::WalSync.label()) {
                        appended.push((page, tag));
                    }
                }
            }
        }
        (store.wal_synced_len(), store.wal_len())
        // Dropped without checkpoint: the process crash.
    };
    assert!(!appended.is_empty(), "the storm must append something");
    let record_len = total_len / appended.len() as u64;
    assert_eq!(
        total_len,
        record_len * appended.len() as u64,
        "appended-record accounting must explain the WAL length exactly"
    );
    let synced_records = (synced_len / record_len) as usize;

    // Replay the decision stream on a fresh injector: decisions depend
    // only on (seed, point, index), so the replayed counts must reconcile
    // with the live run's — and the replay exposes the fault *flavors*,
    // which the gate requires to include real torn writes and fsync
    // failures (otherwise the schedule tested nothing).
    let replay = FaultInjector::seeded(CHAOS_SEED)
        .with_rate(FaultPoint::WalAppend, 0.10)
        .with_rate(FaultPoint::WalSync, 0.10);
    let (mut torn, mut append_failed, mut sync_failed) = (0u64, 0u64, 0u64);
    for _ in 0..ops.len() {
        match replay.decide(FaultPoint::WalAppend, record_len as usize) {
            InjectedFault::None => {}
            InjectedFault::Torn(_) => torn += 1,
            _ => append_failed += 1,
        }
    }
    for _ in 0..appended.len() {
        if replay.decide(FaultPoint::WalSync, 0) != InjectedFault::None {
            sync_failed += 1;
        }
    }
    assert_eq!(
        replay.injected_at(FaultPoint::WalAppend),
        fault.injected_at(FaultPoint::WalAppend),
        "replayed append schedule diverged from the live run"
    );
    assert_eq!(
        replay.injected_at(FaultPoint::WalSync),
        fault.injected_at(FaultPoint::WalSync),
        "replayed sync schedule diverged from the live run"
    );
    assert!(torn >= 1, "the schedule must tear at least one WAL append");
    assert!(
        sync_failed >= 1,
        "the schedule must fail at least one fsync"
    );
    println!(
        "  storm: {} writes, {} acked, {} torn appends, {} failed appends, {} failed fsyncs",
        ops.len(),
        acked.iter().filter(|&&a| a).count(),
        torn,
        append_failed,
        sync_failed
    );

    // Kernel crash: everything past the synced prefix never hit the
    // device. Recovery runs fault-free (it models a fresh boot).
    {
        use std::fs::OpenOptions;
        let wal = dir.join("store.wal");
        let file = OpenOptions::new().write(true).open(&wal)?;
        file.set_len(synced_len)?;
    }
    let store = PageStore::open(
        StoreConfig::new(dir, 64)
            .with_page_size(PAGE_SIZE)
            .with_durability(Durability::Strict),
    )?;
    assert_eq!(
        store.recovered_writes(),
        synced_records as u64,
        "recovery must replay exactly the synced prefix"
    );

    // The model: last record inside the synced prefix wins per page. In
    // Strict mode every *acknowledged* write synced inline, so nothing
    // acked can be missing — only sync-failed tails may be dropped.
    let mut expected: BTreeMap<u64, u8> = BTreeMap::new();
    for &(page, tag) in &appended[..synced_records] {
        expected.insert(page, tag);
    }
    let mut recovered = BTreeMap::new();
    let mut buf = Vec::new();
    for page in 0u64..32 {
        let source = store.read(PageId(page), &mut buf)?;
        match expected.get(&page) {
            Some(&tag) => {
                assert_eq!(
                    buf,
                    vec![tag; PAGE_SIZE],
                    "page {page} must recover bit-identical to the model"
                );
                recovered.insert(page, buf.clone());
            }
            None => assert_eq!(source, ReadSource::Zero, "page {page} was never durable"),
        }
    }
    drop(store);
    Ok(StormOutcome {
        acked,
        counts: fault.counts(),
        appended,
        synced_len,
        recovered,
    })
}

/// Dials the front-end, tolerating injected accept drops (the TCP connect
/// itself succeeds even when the server drops the accepted stream — the
/// drop surfaces on first use, which the callers handle).
fn connect(addr: SocketAddr) -> BlockingClient {
    for _ in 0..1_000 {
        if let Ok(client) = BlockingClient::connect_tcp(addr) {
            return client;
        }
    }
    panic!("could not connect to the chaos front-end after 1000 attempts");
}

fn main() -> io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!("Chaos smoke, scale = {}\n", ctx.scale_label());
    let (rate, seconds) = match ctx.scale {
        PresetScale::Smoke => (4_000.0, 0.4),
        _ => (8_000.0, 1.0),
    };

    // ---- Phase A: durability under injected WAL faults, twice. --------
    println!("phase A: strict durability under a seeded WAL fault storm");
    let ops: Vec<(u64, u8)> = (0..400u64)
        .map(|i| (i.wrapping_mul(0x9e3779b9) % 32, (i % 251) as u8))
        .collect();
    let dir_a = std::env::temp_dir().join(format!("clic-chaos-a-{}", std::process::id()));
    let first = durability_storm(&dir_a, &ops)?;
    let second = durability_storm(&dir_a, &ops)?;
    assert_eq!(
        first, second,
        "same seed, same storm: acks, counts, synced prefix, and recovered \
         bytes must all replay identically"
    );
    std::fs::remove_dir_all(&dir_a).ok();
    println!(
        "  deterministic: both runs acked {}/{} writes, synced prefix {} bytes, \
         {} pages recovered bit-identical\n",
        first.acked.iter().filter(|&&a| a).count(),
        ops.len(),
        first.synced_len,
        first.recovered.len()
    );

    // ---- Phase B: degradation under store faults, network clean. ------
    println!("phase B: open-loop load over a faulted store, load shedding armed");
    let store_fault = FaultInjector::seeded(CHAOS_SEED ^ 1).with_rate(FaultPoint::WalAppend, 0.02);
    let dir_b = std::env::temp_dir().join(format!("clic-chaos-b-{}", std::process::id()));
    std::fs::create_dir_all(&dir_b)?;
    let config = ServerConfig::new(2_048)
        .with_shards(2)
        .with_recorder(clic_obs::Recorder::enabled())
        .with_store(
            StoreConfig::new(&dir_b, 2_048)
                .with_page_size(PAGE_SIZE)
                .with_fault_injector(store_fault),
        );
    let net = NetServer::start(
        Server::start(config),
        NetOptions {
            shed_busy: true,
            ..NetOptions::default()
        },
    )?;
    let addr = net.tcp_addr().expect("tcp front-end enabled");
    println!("  front-end on {addr}, offering {rate:.0} req/s for {seconds} s");

    let open_loop = OpenLoopConfig {
        rate,
        requests: (rate * seconds) as u64,
        pages: 4_096,
        payload: Some(PAGE_SIZE),
        ..OpenLoopConfig::default()
    };
    let report = run_open_loop(addr, &open_loop)?;
    let received = report.completed + report.errored + report.shed;
    println!(
        "  sent {} / completed {} / errored {} / shed {} in {:.2} s",
        report.sent,
        report.completed,
        report.errored,
        report.shed,
        report.elapsed.as_secs_f64()
    );
    // The pipe is clean, so the whole schedule must be sent and every
    // request answered — degradation shows up as typed errors, never as
    // silence.
    assert_eq!(report.sent, open_loop.requests, "the pipe is fault-free");
    assert_eq!(
        received, report.sent,
        "every request must be answered: success, error, or shed"
    );
    assert!(report.completed > 0, "nothing completed under chaos");
    assert!(
        report.errored >= 1,
        "a ~2% WAL-append fault rate over the write mix must surface at \
         least one OP_ERR end-to-end"
    );
    // Bounded degradation: writes are ~25% of the mix and ~2% of those
    // fault, so errors must stay a small minority.
    assert!(
        report.errored + report.shed <= received / 4 + 8,
        "error rate under light chaos must stay bounded: {} errored + {} shed of {}",
        report.errored,
        report.shed,
        received
    );

    // Explicit `Busy` shedding: pipeline a burst through a window-1
    // connection. The loop decodes the whole burst in one pass, submits
    // one operation, and must shed the rest with typed errors instead of
    // stalling the stream (re-arm a fresh window-1 server would be
    // overkill: the default window is 64, so drive 256 ≫ 64 at once).
    let mut burst_client = connect(addr);
    burst_client.set_timeouts(Some(Duration::from_secs(10)))?;
    let burst: Vec<ServerRequest> = (0..256u64)
        .map(|i| ServerRequest::Put {
            client: cache_sim::ClientId(0),
            page: PageId(i % 512),
            hint: cache_sim::HintSetId(0),
            write_hint: None,
            data: Some(page_payload(PageId(i % 512), PAGE_SIZE)),
        })
        .collect();
    let responses = burst_client
        .call_batch(&burst)
        .expect("the pipe is fault-free; the burst must be fully answered");
    let burst_shed = responses
        .iter()
        .filter(|r| r.error_code() == Some(ErrorCode::Busy))
        .count();
    println!("  burst: {} of {} answered Busy", burst_shed, burst.len());
    assert!(
        burst_shed > 0,
        "a 256-op burst through a 64-slot window must shed something"
    );
    drop(burst_client);

    // The server-side ledger saw the shedding: the recorder is enabled,
    // so every Busy answer above landed in `server.shed_busy`.
    let mut stats_client = connect(addr);
    stats_client.set_timeouts(Some(Duration::from_secs(10)))?;
    let snapshot = stats_client.stats()?;
    let shed_counter = snapshot.metrics.counter("server.shed_busy");
    println!("  server counters: shed_busy = {shed_counter}");
    assert!(
        shed_counter >= (burst_shed as u64) + report.shed,
        "the shed counter must cover every Busy response"
    );
    drop(stats_client);

    // Clean shutdown despite the degraded run.
    let result = net.shutdown()?;
    assert!(
        result.stats.requests() > 0,
        "shutdown statistics lost the run"
    );
    std::fs::remove_dir_all(&dir_b).ok();

    // ---- Phase C: a hostile network. -----------------------------------
    println!("\nphase C: a retrying client against an armed network front-end");
    let net_fault = FaultInjector::seeded(CHAOS_SEED)
        .with_rate(FaultPoint::NetSend, 0.02)
        .with_rate(FaultPoint::NetRecv, 0.004)
        .with_rate(FaultPoint::NetAccept, 0.10);
    // Policy-only (no store): phase C is about the wire, not the disk.
    let chaos_config = ServerConfig::new(4_096)
        .with_shards(2)
        .with_recorder(clic_obs::Recorder::enabled());
    let chaos_net = NetServer::start(
        Server::start(chaos_config),
        NetOptions {
            fault: net_fault.clone(),
            ..NetOptions::default()
        },
    )?;
    let chaos_addr = chaos_net.tcp_addr().expect("tcp front-end enabled");

    // Force the accept-drop fault to demonstrably fire: every fresh dial
    // draws one accept decision (rate 0.10), so a handful suffice. A
    // dropped accept looks like a connection dying on first use — the
    // stats call synchronizes with the event loop either way.
    let mut dials = 0u32;
    while net_fault.injected_at(FaultPoint::NetAccept) < 1 && dials < 1_000 {
        let mut c = connect(chaos_addr);
        let _ = c.set_timeouts(Some(Duration::from_secs(2)));
        let _ = c.call(&ServerRequest::Stats);
        dials += 1;
    }
    println!("  {dials} dials to land an accept drop");

    // A retrying client rides out whatever the injector throws: keep
    // probing until the schedule has demonstrably reset at least one
    // connection and injured at least one send.
    let policy = RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(20),
        seed: CHAOS_SEED,
    };
    let mut probe = connect(chaos_addr);
    probe.set_timeouts(Some(Duration::from_secs(10)))?;
    let mut probes = 0u64;
    while (net_fault.injected_at(FaultPoint::NetRecv) < 1
        || net_fault.injected_at(FaultPoint::NetSend) < 1)
        && probes < 10_000
    {
        let response = probe
            .call_with_retry(
                &ServerRequest::Get {
                    client: cache_sim::ClientId(0),
                    page: PageId(probes % 4_096),
                    hint: cache_sim::HintSetId(0),
                    prefetch: false,
                },
                &policy,
            )
            .expect("a retrying client must survive injected resets");
        assert!(
            response.hit().is_some() || response.error_code().is_some(),
            "a get must answer hit/miss or a typed error"
        );
        probes += 1;
    }
    assert!(
        net_fault.injected_at(FaultPoint::NetRecv) >= 1,
        "the schedule must reset at least one connection"
    );
    assert!(
        net_fault.injected_at(FaultPoint::NetAccept) >= 1,
        "the schedule must drop at least one accept"
    );
    assert!(
        net_fault.injected_at(FaultPoint::NetSend) >= 1,
        "the schedule must tear or fail at least one send"
    );
    println!(
        "  {} retry probes, all survived; injected: {} accept drops, {} resets, {} send faults",
        probes,
        net_fault.injected_at(FaultPoint::NetAccept),
        net_fault.injected_at(FaultPoint::NetRecv),
        net_fault.injected_at(FaultPoint::NetSend),
    );

    // Clean shutdown despite the armed injector.
    let chaos_result = chaos_net.shutdown()?;
    assert!(
        chaos_result.stats.requests() > 0,
        "shutdown statistics lost the probes"
    );

    let mut table = ResultTable::new(
        "chaos smoke (timing-dependent; excluded from determinism diffs)",
        &["metric", "value"],
    );
    table.push_row(vec!["open_loop_sent".into(), report.sent.to_string()]);
    table.push_row(vec![
        "open_loop_completed".into(),
        report.completed.to_string(),
    ]);
    table.push_row(vec!["open_loop_errored".into(), report.errored.to_string()]);
    table.push_row(vec!["open_loop_shed".into(), report.shed.to_string()]);
    table.push_row(vec!["burst_shed".into(), burst_shed.to_string()]);
    table.push_row(vec![
        "accept_drops".into(),
        net_fault.injected_at(FaultPoint::NetAccept).to_string(),
    ]);
    table.push_row(vec![
        "conn_resets".into(),
        net_fault.injected_at(FaultPoint::NetRecv).to_string(),
    ]);
    table.push_row(vec![
        "send_faults".into(),
        net_fault.injected_at(FaultPoint::NetSend).to_string(),
    ]);
    table.emit(&ctx.out_dir, "chaos_smoke")?;
    ctx.emit_json(
        "chaos_smoke",
        JsonValue::object([
            (
                "storm_acked",
                num(first.acked.iter().filter(|&&a| a).count() as u64),
            ),
            ("storm_writes", num(ops.len() as u64)),
            ("open_loop_sent", num(report.sent)),
            ("open_loop_completed", num(report.completed)),
            ("open_loop_errored", num(report.errored)),
            ("open_loop_shed", num(report.shed)),
            ("burst_shed", num(burst_shed as u64)),
            (
                "accept_drops",
                num(net_fault.injected_at(FaultPoint::NetAccept)),
            ),
            (
                "conn_resets",
                num(net_fault.injected_at(FaultPoint::NetRecv)),
            ),
            (
                "send_faults",
                num(net_fault.injected_at(FaultPoint::NetSend)),
            ),
        ]),
    )?;

    println!("\nchaos smoke: all assertions passed");
    Ok(())
}
