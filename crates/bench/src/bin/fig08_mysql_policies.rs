//! Figure 8: server-cache read hit ratio of OPT, TQ, LRU, ARC and CLIC as a
//! function of the server cache size, for the two MySQL TPC-H traces
//! (`MY_H65`, `MY_H98`). The (policy, cache size) grid of each trace is
//! fanned across worker threads (`--jobs`) through the deterministic
//! parallel executor.

use clic_bench::{
    comparison_metrics, comparison_table, json::JsonValue, run_policy_comparison,
    ExperimentContext, PAPER_POLICIES,
};
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let pool = ctx.pool();
    println!(
        "Figure 8 reproduction (MySQL TPC-H policy comparison), scale = {}, jobs = {}\n",
        ctx.scale_label(),
        pool.jobs()
    );
    let mut metrics = Vec::new();
    for preset in TracePreset::MYSQL {
        let trace = preset.build(ctx.scale);
        let summary = trace.summary();
        println!("generated {summary}");
        let sizes = preset.server_cache_sizes(ctx.scale);
        let points = run_policy_comparison(&pool, &trace, &sizes, &PAPER_POLICIES);
        let table = comparison_table(
            format!(
                "Figure 8 ({}): read hit ratio vs server cache size",
                preset.name()
            ),
            &points,
            &sizes,
            &PAPER_POLICIES,
        );
        table.emit(
            &ctx.out_dir,
            &format!("fig08_{}", preset.name().to_lowercase()),
        )?;
        metrics.push((
            preset.name().to_string(),
            comparison_metrics(&points, &sizes, &PAPER_POLICIES),
        ));
    }
    ctx.emit_json("fig08_mysql_policies", JsonValue::Object(metrics))
}
