//! Observability smoke gate: proves the recorder-instrumented stack is
//! still deterministic where it must be, and that its outputs parse.
//!
//! This is the `verify.sh --smoke-obs` binary, not a figure experiment —
//! it is intentionally *absent* from `run_all`'s experiment lists. Three
//! checks:
//!
//! 1. **Counters are job-count invariant.** The partitioned storage replay
//!    (CLIC over 2 shard stores, WAL on, enabled recorder) runs once on a
//!    1-worker pool and once on a 2-worker pool; the deterministic counters
//!    — requests, hits, evictions, WAL records, and in fact the whole
//!    [`cache_sim::CacheStats`] / [`cache_sim::IoStats`] pair — must be
//!    bit-identical. Instrumentation must observe, never perturb.
//! 2. **The trace ring drains to valid JSON.** A recorder-enabled server
//!    load (2 clients, 2 shards) must leave `shard_batch` spans in the
//!    ring, the drained dump and the merged metrics snapshot must pass the
//!    strict [`clic_obs::json::validate`] parser, and the client-batch
//!    histogram published by the harness must count every batch submitted.
//! 3. **A mock clock makes dumps reproducible.** The same serial replay
//!    against a [`clic_obs::Clock::mock`]-backed recorder twice must render
//!    byte-identical trace JSON — the property the ROADMAP's interleaving
//!    studies will lean on.
//!
//! Latency *values* are wall-clock and never asserted on; only counts,
//! structure, and validity are.

use std::fs;
use std::path::PathBuf;

use cache_sim::{BoxedPolicy, ThreadPool, REPLAY_CHUNK};
use clic_bench::{build_policy, json::JsonValue, window_for_trace, ExperimentContext};
use clic_core::{ClicConfig, TrackingMode};
use clic_obs::{json::validate, Clock, Recorder, SpanKind, TraceDump};
use clic_server::{run_load, LoadConfig, ServerConfig, CLIENT_BATCH_HISTOGRAM};
use clic_store::{
    replay_storage, replay_storage_partitioned, PageStore, StorageReplayReport, StoreConfig,
    REPLAY_CHUNK_HISTOGRAM,
};
use trace_gen::TracePreset;

/// Small pages: this gate moves real bytes but its counters are
/// size-independent, so keep the scratch files tiny.
const PAGE_SIZE: usize = 256;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("clic-obs-smoke-{}-{tag}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// The partitioned CLIC replay with an enabled recorder, on a `jobs`-worker
/// pool. Returns the report plus the recorder's drained trace and snapshot.
fn instrumented_replay(
    trace: &cache_sim::Trace,
    cache_pages: usize,
    window: u64,
    jobs: usize,
) -> std::io::Result<(StorageReplayReport, TraceDump, clic_obs::MetricsSnapshot)> {
    let recorder = Recorder::enabled();
    let dir = scratch_dir(&format!("replay-j{jobs}"));
    let config = StoreConfig::new(&dir, cache_pages)
        .with_page_size(PAGE_SIZE)
        .with_wal(true)
        .with_flush_threshold((cache_pages / 4).max(1))
        .with_recorder(recorder.clone());
    let factory = (
        "CLIC(k=100)".to_string(),
        |capacity: usize| -> BoxedPolicy { build_policy("CLIC(k=100)", trace, capacity, window) },
    );
    let pool = ThreadPool::new(jobs);
    let report = replay_storage_partitioned(&pool, &factory, trace, cache_pages, 2, &config)?;
    fs::remove_dir_all(&dir).ok();
    Ok((report, recorder.drain_trace(), recorder.snapshot()))
}

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!("Observability smoke, scale = {}\n", ctx.scale_label());

    let trace = TracePreset::Db2C60.build(ctx.scale);
    println!("workload: {}", trace.summary());
    let cache_pages = TracePreset::Db2C60.reference_cache_size(ctx.scale);
    let window = window_for_trace(&trace);

    // 1. Deterministic counters are identical at --jobs 1 and --jobs 2.
    let (serial, serial_trace, serial_snap) = instrumented_replay(&trace, cache_pages, window, 1)?;
    let (parallel, parallel_trace, _) = instrumented_replay(&trace, cache_pages, window, 2)?;
    assert_eq!(
        serial.result.stats, parallel.result.stats,
        "policy counters (requests/hits/evictions) must not depend on the pool size"
    );
    assert_eq!(
        serial.io, parallel.io,
        "I/O counters (WAL records, disk reads, flushes) must not depend on the pool size"
    );
    println!(
        "replay counters job-count invariant: {} requests, {} read hits, {} evictions, {} wal records",
        serial.result.stats.requests(),
        serial.result.stats.read_hits,
        serial.result.stats.evictions,
        serial.io.wal_records,
    );

    // The recorder actually saw the replay: chunk latencies and trace spans.
    let expected_chunks = (trace.len() as u64).div_ceil(REPLAY_CHUNK as u64);
    assert_eq!(
        serial.latency.count(),
        expected_chunks,
        "one latency sample per {REPLAY_CHUNK}-request chunk"
    );
    assert_eq!(
        serial_snap.histogram(REPLAY_CHUNK_HISTOGRAM).count(),
        expected_chunks,
        "report.latency and the registry histogram are the same data"
    );
    for dump in [&serial_trace, &parallel_trace] {
        assert!(
            dump.events.iter().any(|e| e.kind == SpanKind::WalAppend),
            "a WAL-enabled replay must leave wal_append spans in the ring"
        );
        validate(&dump.to_json()).expect("trace dump must be valid JSON");
    }
    validate(&serial_snap.to_json()).expect("metrics snapshot must be valid JSON");
    println!(
        "trace ring drains cleanly: {} events ({} dropped), JSON valid",
        serial_trace.events.len(),
        serial_trace.dropped
    );

    // 2. Recorder-enabled server load: spans from the shard workers, a
    // batch-latency histogram counting every batch, everything parseable.
    let recorder = Recorder::enabled();
    let presets = [TracePreset::Db2C60, TracePreset::Db2C300];
    let client_traces = clic_server::preset_client_traces(&presets, ctx.scale);
    let load_config = LoadConfig::new(
        ServerConfig::new(cache_pages)
            .with_shards(2)
            .with_clic(
                ClicConfig::default()
                    .with_window(window)
                    .with_tracking(TrackingMode::TopK(100)),
            )
            .with_recorder(recorder.clone()),
    )
    .with_batch(REPLAY_CHUNK);
    let report = run_load(&load_config, &client_traces);
    let total_batches: u64 = report.clients.iter().map(|c| c.batches).sum();
    let batch_hist = recorder
        .histogram(CLIENT_BATCH_HISTOGRAM)
        .expect("enabled recorder hands out histograms");
    assert_eq!(
        batch_hist.count(),
        total_batches,
        "the harness must publish every client batch latency into the recorder"
    );
    let server_trace = recorder.drain_trace();
    assert!(
        server_trace
            .events
            .iter()
            .any(|e| e.kind == SpanKind::ShardBatch),
        "shard workers must leave shard_batch spans"
    );
    validate(&server_trace.to_json()).expect("server trace dump must be valid JSON");
    validate(&recorder.snapshot().to_json()).expect("server metrics snapshot must be valid JSON");
    println!(
        "server load instrumented: {} requests, {} batches in histogram, {} trace events",
        report.requests(),
        total_batches,
        server_trace.events.len()
    );

    // 3. Mock clock: the same serial replay twice renders byte-identical
    // trace JSON (single-threaded, so thread ids and event order are fixed).
    let mock_run = |tag: &str| -> std::io::Result<String> {
        let recorder = Recorder::with_clock(Clock::mock());
        let dir = scratch_dir(&format!("mock-{tag}"));
        let config = StoreConfig::new(&dir, cache_pages)
            .with_page_size(PAGE_SIZE)
            .with_wal(true)
            .with_flush_threshold((cache_pages / 4).max(1))
            .with_recorder(recorder.clone());
        let store = PageStore::open(config)?;
        let mut policy = build_policy("CLIC(k=100)", &trace, cache_pages, window);
        replay_storage(policy.as_mut(), &store, &trace)?;
        drop(store);
        fs::remove_dir_all(&dir).ok();
        Ok(recorder.drain_trace().to_json())
    };
    let first = mock_run("a")?;
    let second = mock_run("b")?;
    assert_eq!(
        first, second,
        "mock-clock trace dumps must be byte-identical run to run"
    );
    validate(&first).expect("mock-clock trace dump must be valid JSON");
    println!(
        "mock-clock trace dumps reproducible ({} bytes of JSON)",
        first.len()
    );

    println!("\nobs smoke: all assertions passed");
    ctx.emit_json(
        "obs_smoke",
        JsonValue::object([
            (
                "requests",
                JsonValue::num(serial.result.stats.requests() as f64),
            ),
            (
                "read_hits",
                JsonValue::num(serial.result.stats.read_hits as f64),
            ),
            (
                "evictions",
                JsonValue::num(serial.result.stats.evictions as f64),
            ),
            ("wal_records", JsonValue::num(serial.io.wal_records as f64)),
            (
                "replay_trace_events",
                JsonValue::num(serial_trace.events.len() as f64),
            ),
            (
                "server_trace_events",
                JsonValue::num(server_trace.events.len() as f64),
            ),
            ("server_batches", JsonValue::num(total_batches as f64)),
        ]),
    )
}
