//! Figure 6: server-cache read hit ratio of OPT, TQ, LRU, ARC and CLIC as a
//! function of the server cache size, for the three DB2 TPC-C traces
//! (`DB2_C60`, `DB2_C300`, `DB2_C540`). The (policy, cache size) grid of
//! each trace is fanned across worker threads (`--jobs`) through the
//! deterministic parallel executor.

use clic_bench::{
    comparison_metrics, comparison_table, json::JsonValue, run_policy_comparison,
    ExperimentContext, PAPER_POLICIES,
};
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let pool = ctx.pool();
    println!(
        "Figure 6 reproduction (DB2 TPC-C policy comparison), scale = {}, jobs = {}\n",
        ctx.scale_label(),
        pool.jobs()
    );
    let mut metrics = Vec::new();
    for preset in TracePreset::TPCC {
        let trace = preset.build(ctx.scale);
        let summary = trace.summary();
        println!("generated {summary}");
        let sizes = preset.server_cache_sizes(ctx.scale);
        let points = run_policy_comparison(&pool, &trace, &sizes, &PAPER_POLICIES);
        let table = comparison_table(
            format!(
                "Figure 6 ({}): read hit ratio vs server cache size",
                preset.name()
            ),
            &points,
            &sizes,
            &PAPER_POLICIES,
        );
        table.emit(
            &ctx.out_dir,
            &format!("fig06_{}", preset.name().to_lowercase()),
        )?;
        metrics.push((
            preset.name().to_string(),
            comparison_metrics(&points, &sizes, &PAPER_POLICIES),
        ));
    }
    ctx.emit_json("fig06_tpcc_policies", JsonValue::Object(metrics))
}
