//! Figure 6: server-cache read hit ratio of OPT, TQ, LRU, ARC and CLIC as a
//! function of the server cache size, for the three DB2 TPC-C traces
//! (`DB2_C60`, `DB2_C300`, `DB2_C540`).

use clic_bench::{comparison_table, run_policy_comparison, ExperimentContext, PAPER_POLICIES};
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Figure 6 reproduction (DB2 TPC-C policy comparison), scale = {}\n",
        ctx.scale_label()
    );
    for preset in TracePreset::TPCC {
        let trace = preset.build(ctx.scale);
        let summary = trace.summary();
        println!("generated {summary}");
        let sizes = preset.server_cache_sizes(ctx.scale);
        let points = run_policy_comparison(&trace, &sizes, &PAPER_POLICIES);
        let table = comparison_table(
            format!(
                "Figure 6 ({}): read hit ratio vs server cache size",
                preset.name()
            ),
            &points,
            &sizes,
            &PAPER_POLICIES,
        );
        table.emit(
            &ctx.out_dir,
            &format!("fig06_{}", preset.name().to_lowercase()),
        )?;
    }
    Ok(())
}
