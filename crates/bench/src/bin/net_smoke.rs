//! Network front-end smoke gate (`scripts/verify.sh --smoke-net`).
//!
//! Boots the event-driven TCP front-end around a store-backed server,
//! offers ~1 second of seeded open-loop Poisson load over localhost, and
//! asserts the invariants the wire path must never lose — failures panic,
//! so a nonzero exit is the gate tripping:
//!
//! * every scheduled request is sent, served, and answered (no drops, no
//!   wedged event loop),
//! * the latency histogram is non-empty and ordered (p50 ≤ p99 ≤ max),
//! * a stats probe over the wire agrees with the number of requests
//!   served, and the metrics snapshot rode along,
//! * deletes round-trip over the wire,
//! * shutdown is clean (the final statistics come back out).

use clic_bench::ExperimentContext;
use clic_server::{
    run_open_loop, BlockingClient, NetOptions, NetServer, OpenLoopConfig, Server, ServerConfig,
    ServerRequest, StoreConfig, DEFAULT_PAGE_SIZE,
};
use trace_gen::PresetScale;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!("Network front-end smoke, scale = {}\n", ctx.scale_label());
    let (rate, seconds) = match ctx.scale {
        PresetScale::Smoke => (5_000.0, 0.4),
        _ => (10_000.0, 1.0),
    };

    let dir = std::env::temp_dir().join(format!("clic-net-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let config = ServerConfig::new(2_048)
        .with_shards(2)
        .with_store(StoreConfig::new(&dir, 2_048));
    let net = NetServer::start(Server::start(config), NetOptions::default())?;
    let addr = net.tcp_addr().expect("tcp front-end enabled");
    println!("front-end on {addr}, offering {rate:.0} req/s for {seconds} s");

    let open_loop = OpenLoopConfig {
        rate,
        requests: (rate * seconds) as u64,
        pages: 8_192,
        payload: Some(DEFAULT_PAGE_SIZE),
        ..OpenLoopConfig::default()
    };
    let report = run_open_loop(addr, &open_loop)?;
    println!(
        "sent {} / completed {} in {:.2} s ({:.0} req/s achieved)",
        report.sent,
        report.completed,
        report.elapsed.as_secs_f64(),
        report.achieved_rps
    );
    assert_eq!(
        report.sent, open_loop.requests,
        "not every request was sent"
    );
    assert_eq!(
        report.completed, open_loop.requests,
        "not every request was answered"
    );
    let latency = &report.latency;
    println!(
        "latency p50/p95/p99/p999/max: {}/{}/{}/{}/{} us",
        latency.p50_us, latency.p95_us, latency.p99_us, latency.p999_us, latency.max_us
    );
    assert_eq!(latency.batches, open_loop.requests, "empty percentiles");
    assert!(
        latency.p50_us > 0,
        "zero p50 is not a plausible measurement"
    );
    assert!(latency.p50_us <= latency.p99_us && latency.p99_us <= latency.max_us);

    // Stats and deletes over the wire.
    let mut client = BlockingClient::connect_tcp(addr)?;
    let snapshot = client.stats()?;
    assert_eq!(
        snapshot.result.stats.requests(),
        open_loop.requests,
        "the server's account of served requests disagrees with the generator"
    );
    assert!(
        snapshot.metrics.counter("store.bytes_written") > 0,
        "the metrics snapshot did not ride along the wire"
    );
    let page = cache_sim::PageId(3);
    let existed = client
        .call(&ServerRequest::Delete { page })?
        .existed()
        .expect("a delete response");
    println!("delete over the wire: existed = {existed}");

    drop(client);
    let result = net.shutdown()?;
    assert_eq!(
        result.stats.requests(),
        open_loop.requests,
        "shutdown statistics lost requests"
    );
    std::fs::remove_dir_all(&dir).ok();
    println!("\nnet smoke: all assertions passed");
    Ok(())
}
