//! Server throughput: the online counterpart of the Figure 11 multi-client
//! experiment. Four storage clients (the three DB2 TPC-C presets plus a
//! second `DB2_C60` instance) drive a sharded `clic-server` concurrently in
//! closed loops; the harness reports requests/s, batch latency percentiles,
//! and per-client read hit ratios, and compares the aggregate hit ratio
//! against a single-threaded CLIC simulation of the equivalent interleaved
//! trace (the sharding + merging fidelity check).

use cache_sim::{simulate, REPLAY_CHUNK};
use clic_bench::{json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use clic_core::{Clic, ClicConfig, TrackingMode};
use clic_server::{run_load, LoadConfig, ServerConfig};
use trace_gen::{interleave, TracePreset};

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!(
        "Server throughput (online Figure 11), scale = {}\n",
        ctx.scale_label()
    );

    // Four independent storage clients over disjoint page ranges.
    let presets = [
        TracePreset::Db2C60,
        TracePreset::Db2C300,
        TracePreset::Db2C540,
        TracePreset::Db2C60,
    ];
    // Built over disjoint page ranges and truncated to the shortest client
    // (the `interleave` rule), so the load run and the offline reference
    // below serve exactly the same requests.
    let traces = clic_server::preset_client_traces(&presets, ctx.scale);
    for trace in &traces {
        println!("client trace: {}", trace.summary());
    }

    let total_requests: u64 = traces.iter().map(|t| t.len() as u64).sum();
    let shards = std::thread::available_parallelism()
        .map(|p| p.get().clamp(2, 8))
        .unwrap_or(4);
    let cache_pages = presets[0].reference_cache_size(ctx.scale);
    let window = clic_core::suggested_window(total_requests);
    let clic_config = ClicConfig::default()
        .with_window(window)
        .with_tracking(TrackingMode::TopK(100));

    let config = LoadConfig::new(
        ServerConfig::new(cache_pages)
            .with_shards(shards)
            .with_clic(clic_config)
            .with_merge_every(window),
    )
    .with_batch(REPLAY_CHUNK);
    println!(
        "server: {cache_pages} pages, {shards} shards, window {window}, {} clients\n",
        traces.len()
    );
    let report = run_load(&config, &traces);

    // Reference: one single-threaded CLIC over the equivalent interleaved
    // trace (the offline Figure 11 shared-cache configuration).
    let refs: Vec<&cache_sim::Trace> = traces.iter().collect();
    let (combined, _) = interleave(&refs);
    let mut reference = Clic::new(
        cache_pages,
        ClicConfig::default()
            .with_window(window_for_trace(&combined))
            .with_tracking(TrackingMode::TopK(100)),
    );
    let reference_result = simulate(&mut reference, &combined);

    let mut table = ResultTable::new(
        format!(
            "Server throughput: {} requests, {cache_pages}-page cache, {shards} shards, batch {}",
            report.requests(),
            config.batch
        ),
        &["metric", "value"],
    );
    table.push_row(vec![
        "throughput".into(),
        format!("{:.0} req/s", report.throughput_rps()),
    ]);
    table.push_row(vec![
        "elapsed".into(),
        format!("{:.2} s", report.elapsed.as_secs_f64()),
    ]);
    table.push_row(vec![
        "batch latency p50/p95/p99/p999/max".into(),
        format!(
            "{}/{}/{}/{}/{} us",
            report.latency.p50_us,
            report.latency.p95_us,
            report.latency.p99_us,
            report.latency.p999_us,
            report.latency.max_us
        ),
    ]);
    for client in &report.clients {
        table.push_row(vec![
            format!("read hit ratio [{}]", client.trace),
            format!("{:.1}%", client.read_hit_ratio() * 100.0),
        ]);
    }
    table.push_row(vec![
        "read hit ratio [aggregate]".into(),
        format!("{:.1}%", report.read_hit_ratio() * 100.0),
    ]);
    table.push_row(vec![
        "read hit ratio [single-cache reference]".into(),
        format!("{:.1}%", reference_result.read_hit_ratio() * 100.0),
    ]);
    table.push_row(vec!["priority merges".into(), format!("{}", report.merges)]);
    table.emit(&ctx.out_dir, "server_throughput")?;
    ctx.emit_json(
        "server_throughput",
        JsonValue::object([
            ("throughput_rps", JsonValue::num(report.throughput_rps())),
            ("requests", JsonValue::num(report.requests() as f64)),
            ("shards", JsonValue::num(shards as f64)),
            ("batch", JsonValue::num(config.batch as f64)),
            (
                "latency_us",
                JsonValue::object([
                    ("p50", JsonValue::num(report.latency.p50_us as f64)),
                    ("p95", JsonValue::num(report.latency.p95_us as f64)),
                    ("p99", JsonValue::num(report.latency.p99_us as f64)),
                    ("p999", JsonValue::num(report.latency.p999_us as f64)),
                    ("max", JsonValue::num(report.latency.max_us as f64)),
                ]),
            ),
            ("read_hit_ratio", JsonValue::num(report.read_hit_ratio())),
            (
                "reference_read_hit_ratio",
                JsonValue::num(reference_result.read_hit_ratio()),
            ),
        ]),
    )
}
