//! Figure 11: multiple storage clients sharing one server cache. Three DB2
//! TPC-C traces are interleaved round-robin into one multi-client trace; a
//! shared cache managed by CLIC (top-k, k = 100) is compared against the
//! baseline of statically partitioning the same space into three private
//! per-client LRU-like caches (the paper partitions the cache equally and
//! runs each client's trace against its own partition). The two
//! configurations are independent simulations over the same interleaved
//! trace, so they run as two cells of the parallel executor.

use cache_sim::policy::PolicyFactory;
use cache_sim::{compare_policies, BoxedPolicy, PartitionedCache};
use clic_bench::{json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use clic_core::{Clic, ClicConfig, TrackingMode};
use trace_gen::{interleave, TracePreset};

struct ClicFactory {
    window: u64,
}

impl PolicyFactory for ClicFactory {
    fn name(&self) -> String {
        "CLIC".to_string()
    }
    fn build(&self, capacity: usize) -> BoxedPolicy {
        Box::new(Clic::new(
            capacity,
            ClicConfig::default()
                .with_window(self.window)
                .with_tracking(TrackingMode::TopK(100)),
        ))
    }
}

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let pool = ctx.pool();
    println!(
        "Figure 11 reproduction (multiple storage clients), scale = {}, jobs = {}\n",
        ctx.scale_label(),
        pool.jobs()
    );

    // Build the three client traces over disjoint page ranges, as three
    // independent DB2 instances would.
    let presets = TracePreset::TPCC;
    let mut traces = Vec::new();
    for (i, preset) in presets.iter().enumerate() {
        let trace = preset.build_with_offset(ctx.scale, (i as u64) * 100_000_000, 42 + i as u64);
        println!("generated {}", trace.summary());
        traces.push(trace);
    }
    let trace_refs: Vec<&cache_sim::Trace> = traces.iter().collect();
    let (combined, clients) = interleave(&trace_refs);
    println!("interleaved: {}", combined.summary());

    let shared_cache = presets[0].reference_cache_size(ctx.scale); // 180K pages in the paper
    let per_client = shared_cache / presets.len();
    let window = window_for_trace(&combined);
    let factory = ClicFactory { window };

    // Two cells: the shared CLIC cache and the statically partitioned
    // baseline, both over the interleaved trace.
    #[derive(Clone, Copy)]
    enum Mode {
        Shared,
        Partitioned,
    }
    let cells = [Mode::Shared, Mode::Partitioned];
    let clients_ref = &clients;
    let factory_ref = &factory;
    let results = compare_policies(&pool, &combined, &cells, |mode| match mode {
        Mode::Shared => Box::new(Clic::new(
            shared_cache,
            ClicConfig::default()
                .with_window(window)
                .with_tracking(TrackingMode::TopK(100)),
        )),
        Mode::Partitioned => Box::new(PartitionedCache::new(factory_ref, clients_ref, per_client)),
    });
    let shared_result = &results[0];
    let partitioned_result = &results[1];

    let mut table = ResultTable::new(
        format!(
            "Figure 11: per-client read hit ratio, {shared_cache}-page shared cache vs {} x {per_client}-page private caches",
            presets.len()
        ),
        &["trace", "shared cache (CLIC)", "private caches"],
    );
    let mut metrics = Vec::new();
    for (preset, client) in presets.iter().zip(clients.iter()) {
        table.push_row(vec![
            preset.name().to_string(),
            format!(
                "{:.1}%",
                shared_result.client_read_hit_ratio(*client) * 100.0
            ),
            format!(
                "{:.1}%",
                partitioned_result.client_read_hit_ratio(*client) * 100.0
            ),
        ]);
        metrics.push((
            preset.name().to_string(),
            JsonValue::object([
                (
                    "shared",
                    JsonValue::num(shared_result.client_read_hit_ratio(*client)),
                ),
                (
                    "partitioned",
                    JsonValue::num(partitioned_result.client_read_hit_ratio(*client)),
                ),
            ]),
        ));
    }
    table.push_row(vec![
        "overall".to_string(),
        format!("{:.1}%", shared_result.read_hit_ratio() * 100.0),
        format!("{:.1}%", partitioned_result.read_hit_ratio() * 100.0),
    ]);
    metrics.push((
        "overall".to_string(),
        JsonValue::object([
            ("shared", JsonValue::num(shared_result.read_hit_ratio())),
            (
                "partitioned",
                JsonValue::num(partitioned_result.read_hit_ratio()),
            ),
        ]),
    ));
    table.emit(&ctx.out_dir, "fig11_multiclient")?;
    ctx.emit_json("fig11_multiclient", JsonValue::Object(metrics))
}
