//! Parameter ablations beyond the paper's figures, for the design choices
//! DESIGN.md calls out:
//!
//! * outqueue size (`Noutq` as a multiple of the cache size; paper uses 5×),
//! * priority-evaluation window size `W`,
//! * smoothing factor `r` (paper uses 1.0),
//! * metadata charging on/off,
//! * on-line statistics vs oracle (whole-trace) statistics.
//!
//! Every sweep is a grid of independent CLIC configurations over the same
//! trace, submitted through the parallel executor (`--jobs`).

use cache_sim::compare_policies;
use clic_bench::{json::JsonValue, window_for_trace, ExperimentContext, ResultTable};
use clic_core::{analyze_trace, Clic, ClicConfig};

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    let pool = ctx.pool();
    println!(
        "CLIC parameter ablations, scale = {}, jobs = {}\n",
        ctx.scale_label(),
        pool.jobs()
    );

    let preset = trace_gen::TracePreset::Db2C300;
    let trace = preset.build(ctx.scale);
    println!("generated {}", trace.summary());
    let cache = preset.reference_cache_size(ctx.scale);
    let base_window = window_for_trace(&trace);

    // Runs one grid of configurations through the executor, returning the
    // read hit ratio per configuration in input order.
    let run_grid = |configs: &[ClicConfig]| -> Vec<f64> {
        compare_policies(&pool, &trace, configs, |config| {
            Box::new(Clic::new(cache, *config))
        })
        .iter()
        .map(|result| result.read_hit_ratio())
        .collect()
    };
    let mut metrics = Vec::new();

    // Outqueue factor sweep.
    let factors = [0.0, 1.0, 2.0, 5.0, 10.0];
    let configs: Vec<ClicConfig> = factors
        .iter()
        .map(|&factor| {
            ClicConfig::default()
                .with_window(base_window)
                .with_outqueue_factor(factor)
        })
        .collect();
    let ratios = run_grid(&configs);
    let mut outqueue_table = ResultTable::new(
        format!(
            "Ablation: outqueue size (trace {}, {cache}-page cache)",
            preset.name()
        ),
        &["outqueue factor", "read hit ratio"],
    );
    let mut per_factor = Vec::new();
    for (&factor, &ratio) in factors.iter().zip(&ratios) {
        outqueue_table.push_row(vec![format!("{factor}"), format!("{:.1}%", ratio * 100.0)]);
        per_factor.push((format!("{factor}"), JsonValue::num(ratio)));
    }
    outqueue_table.emit(&ctx.out_dir, "ablation_outqueue")?;
    metrics.push(("outqueue_factor".to_string(), JsonValue::Object(per_factor)));

    // Window sweep.
    let windows: Vec<u64> = [80u64, 40, 20, 10, 5, 1]
        .iter()
        .map(|&divisor| (trace.len() as u64 / divisor).max(1_000))
        .collect();
    let configs: Vec<ClicConfig> = windows
        .iter()
        .map(|&window| ClicConfig::default().with_window(window))
        .collect();
    let ratios = run_grid(&configs);
    let mut window_table = ResultTable::new(
        format!(
            "Ablation: priority window W (trace {}, {cache}-page cache)",
            preset.name()
        ),
        &["window (requests)", "read hit ratio"],
    );
    let mut per_window = Vec::new();
    for (&window, &ratio) in windows.iter().zip(&ratios) {
        window_table.push_row(vec![window.to_string(), format!("{:.1}%", ratio * 100.0)]);
        per_window.push((window.to_string(), JsonValue::num(ratio)));
    }
    window_table.emit(&ctx.out_dir, "ablation_window")?;
    metrics.push(("window".to_string(), JsonValue::Object(per_window)));

    // Smoothing sweep.
    let smoothings = [0.1, 0.25, 0.5, 0.75, 1.0];
    let configs: Vec<ClicConfig> = smoothings
        .iter()
        .map(|&r| {
            ClicConfig::default()
                .with_window(base_window)
                .with_smoothing(r)
        })
        .collect();
    let ratios = run_grid(&configs);
    let mut smoothing_table = ResultTable::new(
        format!(
            "Ablation: smoothing factor r (trace {}, {cache}-page cache)",
            preset.name()
        ),
        &["r", "read hit ratio"],
    );
    let mut per_r = Vec::new();
    for (&r, &ratio) in smoothings.iter().zip(&ratios) {
        smoothing_table.push_row(vec![format!("{r}"), format!("{:.1}%", ratio * 100.0)]);
        per_r.push((format!("{r}"), JsonValue::num(ratio)));
    }
    smoothing_table.emit(&ctx.out_dir, "ablation_smoothing")?;
    metrics.push(("smoothing".to_string(), JsonValue::Object(per_r)));

    // Metadata charging and oracle statistics. The oracle cell preloads
    // whole-trace priorities into its policy, which the executor's builder
    // closure supports like any other construction step.
    let reports = analyze_trace(&trace);
    #[derive(Clone, Copy)]
    enum Variant {
        Charged,
        Free,
        Oracle,
    }
    let cells = [Variant::Charged, Variant::Free, Variant::Oracle];
    let reports_ref = &reports;
    let results = compare_policies(&pool, &trace, &cells, |variant| match variant {
        Variant::Charged => Box::new(Clic::new(
            cache,
            ClicConfig::default().with_window(base_window),
        )),
        Variant::Free => Box::new(Clic::new(
            cache,
            ClicConfig::default()
                .with_window(base_window)
                .with_metadata_charging(false),
        )),
        Variant::Oracle => {
            let mut oracle = Clic::new(cache, ClicConfig::default().with_window(u64::MAX / 2));
            oracle.preload_priorities(reports_ref.iter().map(|r| (r.hint, r.priority)));
            Box::new(oracle)
        }
    });
    let mut misc_table = ResultTable::new(
        format!(
            "Ablation: metadata charge and oracle statistics (trace {})",
            preset.name()
        ),
        &["variant", "read hit ratio"],
    );
    let labels = [
        "metadata charged (paper)",
        "metadata free",
        "oracle (whole-trace) statistics",
    ];
    let mut per_variant = Vec::new();
    for (label, result) in labels.iter().zip(&results) {
        misc_table.push_row(vec![
            (*label).into(),
            format!("{:.1}%", result.read_hit_ratio() * 100.0),
        ]);
        per_variant.push((label.to_string(), JsonValue::num(result.read_hit_ratio())));
    }
    misc_table.emit(&ctx.out_dir, "ablation_misc")?;
    metrics.push(("variants".to_string(), JsonValue::Object(per_variant)));

    ctx.emit_json("ablation_params", JsonValue::Object(metrics))
}
