//! Parameter ablations beyond the paper's figures, for the design choices
//! DESIGN.md calls out:
//!
//! * outqueue size (`Noutq` as a multiple of the cache size; paper uses 5×),
//! * priority-evaluation window size `W`,
//! * smoothing factor `r` (paper uses 1.0),
//! * metadata charging on/off,
//! * on-line statistics vs oracle (whole-trace) statistics.

use cache_sim::simulate;
use clic_bench::{window_for_trace, ExperimentContext, ResultTable};
use clic_core::{analyze_trace, Clic, ClicConfig};
use trace_gen::TracePreset;

fn main() -> std::io::Result<()> {
    let ctx = ExperimentContext::from_args();
    println!("CLIC parameter ablations, scale = {}\n", ctx.scale_label());

    let preset = TracePreset::Db2C300;
    let trace = preset.build(ctx.scale);
    println!("generated {}", trace.summary());
    let cache = preset.reference_cache_size(ctx.scale);
    let base_window = window_for_trace(&trace);

    let run = |config: ClicConfig| {
        let mut clic = Clic::new(cache, config);
        simulate(&mut clic, &trace).read_hit_ratio()
    };

    // Outqueue factor sweep.
    let mut outqueue_table = ResultTable::new(
        format!(
            "Ablation: outqueue size (trace {}, {cache}-page cache)",
            preset.name()
        ),
        &["outqueue factor", "read hit ratio"],
    );
    for factor in [0.0, 1.0, 2.0, 5.0, 10.0] {
        let ratio = run(ClicConfig::default()
            .with_window(base_window)
            .with_outqueue_factor(factor));
        outqueue_table.push_row(vec![format!("{factor}"), format!("{:.1}%", ratio * 100.0)]);
    }
    outqueue_table.emit(&ctx.out_dir, "ablation_outqueue")?;

    // Window sweep.
    let mut window_table = ResultTable::new(
        format!(
            "Ablation: priority window W (trace {}, {cache}-page cache)",
            preset.name()
        ),
        &["window (requests)", "read hit ratio"],
    );
    for divisor in [80u64, 40, 20, 10, 5, 1] {
        let window = (trace.len() as u64 / divisor).max(1_000);
        let ratio = run(ClicConfig::default().with_window(window));
        window_table.push_row(vec![window.to_string(), format!("{:.1}%", ratio * 100.0)]);
    }
    window_table.emit(&ctx.out_dir, "ablation_window")?;

    // Smoothing sweep.
    let mut smoothing_table = ResultTable::new(
        format!(
            "Ablation: smoothing factor r (trace {}, {cache}-page cache)",
            preset.name()
        ),
        &["r", "read hit ratio"],
    );
    for r in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let ratio = run(ClicConfig::default()
            .with_window(base_window)
            .with_smoothing(r));
        smoothing_table.push_row(vec![format!("{r}"), format!("{:.1}%", ratio * 100.0)]);
    }
    smoothing_table.emit(&ctx.out_dir, "ablation_smoothing")?;

    // Metadata charging and oracle statistics.
    let mut misc_table = ResultTable::new(
        format!(
            "Ablation: metadata charge and oracle statistics (trace {})",
            preset.name()
        ),
        &["variant", "read hit ratio"],
    );
    let charged = run(ClicConfig::default().with_window(base_window));
    let uncharged = run(ClicConfig::default()
        .with_window(base_window)
        .with_metadata_charging(false));
    misc_table.push_row(vec![
        "metadata charged (paper)".into(),
        format!("{:.1}%", charged * 100.0),
    ]);
    misc_table.push_row(vec![
        "metadata free".into(),
        format!("{:.1}%", uncharged * 100.0),
    ]);
    let reports = analyze_trace(&trace);
    let mut oracle = Clic::new(cache, ClicConfig::default().with_window(u64::MAX / 2));
    oracle.preload_priorities(reports.iter().map(|r| (r.hint, r.priority)));
    let oracle_ratio = simulate(&mut oracle, &trace).read_hit_ratio();
    misc_table.push_row(vec![
        "oracle (whole-trace) statistics".into(),
        format!("{:.1}%", oracle_ratio * 100.0),
    ]);
    misc_table.emit(&ctx.out_dir, "ablation_misc")
}
