//! Experiment harness for the CLIC reproduction.
//!
//! Each figure and table of the paper's evaluation (Section 6) has a
//! dedicated binary in `src/bin/`; this library holds the shared machinery:
//!
//! * [`run_policy_comparison`] — simulate OPT/LRU/ARC/TQ/CLIC over a trace at
//!   several server-cache sizes (Figures 6, 7 and 8), fanned across worker
//!   threads through [`cache_sim::compare_policies`],
//! * [`build_policy`] — construct any policy (including CLIC variants) by
//!   name and capacity,
//! * [`ResultTable`] — plain-text / CSV result formatting, written both to
//!   stdout and to the `results/` directory,
//! * [`ExperimentContext`] — common command-line handling shared by every
//!   experiment binary,
//! * [`json`] — the dependency-free JSON writer behind the machine-readable
//!   reports.
//!
//! # Command-line flags
//!
//! Every experiment binary accepts:
//!
//! | flag | default | meaning |
//! |------|---------|---------|
//! | `--scale smoke\|default\|paper` | `default` | workload scale |
//! | `--quick` | — | alias for `--scale smoke` |
//! | `--out-dir DIR` | `results/` | where `.txt`/`.csv` tables land |
//! | `--jobs N` | `CLIC_JOBS` env, else available parallelism | worker threads for the experiment's simulation grid |
//! | `--json PATH` | off | write the experiment's machine-readable report to `PATH` |
//!
//! `run_all` accepts the same flags; there `--jobs N` runs whole experiment
//! *binaries* concurrently (each child grid then runs with `--jobs 1` to
//! avoid oversubscription) while the timing-sensitive microbenches
//! (`access_hotpath`, `server_throughput`, `server_latency`) always run
//! exclusively at the end, and `--json PATH` assembles every child's report
//! into one combined file (conventionally `BENCH_results.json`).
//!
//! # The open-loop latency experiment
//!
//! `server_latency` is the one experiment that talks to the server over
//! real sockets: it boots the event-driven TCP front-end
//! ([`clic_server::NetServer`]) around a store-backed server and offers
//! load with the seeded open-loop Poisson generator
//! ([`clic_server::run_open_loop`]) at several fixed arrival rates, under
//! both buffered and group-commit durability. The generator fixes every
//! request's *scheduled* send time before the run and measures latency
//! from that instant, so the reported percentiles are free of coordinated
//! omission. It takes only the shared flags above; the workload knobs
//! (rates, run length per rate) are derived from `--scale`. Its `metrics`
//! fragment carries the full curve:
//!
//! ```json
//! {
//!   "shards": 4,
//!   "cache_pages": 4096,
//!   "page_universe": 32768,
//!   "write_fraction": 0.25,
//!   "latency_vs_load": [
//!     {
//!       "durability": "buffered",
//!       "offered_rps": 5000, "achieved_rps": 4980,
//!       "sent": 5000, "completed": 5000, "elapsed_s": 1.01,
//!       "mean_us": 310.2,
//!       "p50_us": 290, "p95_us": 610, "p99_us": 940,
//!       "p999_us": 1820, "max_us": 2410
//!     },
//!     { "durability": "group-commit", "offered_rps": 5000, ... }
//!   ]
//! }
//! ```
//!
//! One point per (durability, offered load) pair, in sweep order;
//! `achieved_rps` falling below `offered_rps` marks the saturation knee.
//! Because the experiment measures wall-clock behavior, its CSV is
//! excluded from the determinism diff of `scripts/verify.sh` and `run_all`
//! schedules it exclusively.
//!
//! # Thread-count environment variable
//!
//! `CLIC_JOBS=<n>` overrides the default worker count everywhere a
//! [`cache_sim::ThreadPool`] is sized implicitly (see
//! [`cache_sim::default_jobs`]); an explicit `--jobs` flag wins over the
//! environment. Parallelism never changes results — grids run through the
//! deterministic ordered executor, so output is bit-identical at any job
//! count (`scripts/verify.sh --smoke-bench` enforces this by diffing
//! `--jobs 1` vs `--jobs 2` runs).
//!
//! # JSON report schema
//!
//! A per-experiment report (written by [`ExperimentContext::emit_json`]):
//!
//! ```json
//! {
//!   "experiment": "fig06_tpcc_policies",
//!   "scale": "default",
//!   "jobs": 4,
//!   "wall_time_s": 12.3,
//!   "metrics": { ...experiment-specific headline numbers... }
//! }
//! ```
//!
//! `metrics` holds the headline numbers of each experiment: per-figure read
//! hit ratios (`{"cache_sizes": [...], "policies": {"CLIC": [...], ...}}`
//! per trace for the comparison figures), per-path
//! `{"baseline_ns_per_req", "slab_ns_per_req", "speedup"}` objects plus a
//! `geomean_speedup` for `access_hotpath`, and `throughput_rps` plus a
//! `latency_us` percentile object
//! (`{"p50", "p95", "p99", "p999", "max"}`, microseconds, from the load
//! harness's client-side [`clic_obs::LatencyHistogram`]) for
//! `server_throughput`. The `storage_io` experiment (the disk-backed data
//! plane replayed under CLIC and LRU admission) reports `page_size`,
//! `cache_pages`, `requests`, one object per policy with its byte-level
//! counters (`bytes_read`, `bytes_written`, `buffer_hit_ratio`,
//! `disk_reads`, `disk_writes`, `disk_bytes_read`, `disk_bytes_written`,
//! `disk_reads_per_request`, `pages_flushed`, `eviction_flushes`,
//! `wal_records`, `wal_bytes`, `data_syncs`, `wal_syncs`, `group_commits`,
//! `fsyncs`) plus a `latency_us` object
//! (`{"p50", "p95", "p99", "p999", "max", "chunks"}`) holding percentiles
//! of the per-[`cache_sim::REPLAY_CHUNK`] replay service time from the
//! store's `store.replay_chunk_us` histogram, a `durability` object with
//! the same counters for the CLIC replay at each WAL durability level
//! (`buffered`, `group-commit`, `strict`), a `shards` object with the
//! counters for CLIC partitioned across 2 and 4 per-shard stores, and the
//! headlines `clic_vs_lru_disk_reads_saved` and
//! `group_commit_vs_strict_fsyncs_saved`. Latency objects are wall-clock
//! measurements and are only ever written to the JSON report and stdout,
//! never to the `.csv` tables the determinism gate byte-compares across
//! `--jobs` values. The combined `run_all` file wraps those fragments:
//!
//! ```json
//! {
//!   "suite": "run_all",
//!   "jobs": 2,
//!   "total_wall_time_s": 123.4,
//!   "experiments": [
//!     {"name": "table_fig2", "wall_time_s": 1.2, "ok": true, "report": {...}},
//!     ...
//!   ]
//! }
//! ```
//!
//! Criterion micro-benchmarks for the data structures themselves (policy
//! throughput, Space-Saving, CLIC bookkeeping overhead) live in `benches/`.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod json;

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use cache_sim::policies::{Arc, Lru, Opt, Tq};
use cache_sim::{
    compare_policies, BoxedPolicy, NextUseOracle, SimulationResult, ThreadPool, Trace,
};
use clic_core::{Clic, ClicConfig, TrackingMode};
use json::JsonValue;
use trace_gen::PresetScale;

/// The set of policies the paper compares in Figures 6-8, in plot order.
pub const PAPER_POLICIES: [&str; 5] = ["OPT", "TQ", "LRU", "ARC", "CLIC"];

/// Builds a policy by name for a given trace and capacity.
///
/// Supported names: `"OPT"`, `"LRU"`, `"ARC"`, `"TQ"`, `"CLIC"`, and
/// `"CLIC(k=<n>)"` for the top-k tracking variant. The trace is needed only
/// by OPT (for its future-knowledge oracle); passing the same trace that will
/// be simulated is required for OPT to be meaningful.
///
/// # Panics
///
/// Panics if the policy name is not recognized.
pub fn build_policy(name: &str, trace: &Trace, capacity: usize, window: u64) -> BoxedPolicy {
    match name {
        "OPT" => Box::new(Opt::from_trace(trace, capacity)),
        "LRU" => Box::new(Lru::new(capacity)),
        "ARC" => Box::new(Arc::new(capacity)),
        "TQ" => Box::new(Tq::new(capacity)),
        "CLIC" => Box::new(Clic::new(
            capacity,
            ClicConfig::default().with_window(window),
        )),
        other => {
            if let Some(k) = other
                .strip_prefix("CLIC(k=")
                .and_then(|s| s.strip_suffix(')'))
                .and_then(|s| s.parse::<usize>().ok())
            {
                Box::new(Clic::new(
                    capacity,
                    ClicConfig::default()
                        .with_window(window)
                        .with_tracking(TrackingMode::TopK(k)),
                ))
            } else {
                panic!("unknown policy name: {other}")
            }
        }
    }
}

/// Picks the CLIC priority-window size for a trace. Delegates to
/// [`clic_core::suggested_window`], the single source of truth for the
/// heuristic (see its documentation for the convergence rationale).
pub fn window_for_trace(trace: &Trace) -> u64 {
    clic_core::suggested_window(trace.len() as u64)
}

/// One measured point of a policy-comparison experiment.
#[derive(Debug, Clone)]
pub struct ComparisonPoint {
    /// Policy name.
    pub policy: String,
    /// Server cache size in pages.
    pub cache_pages: usize,
    /// The full simulation result.
    pub result: SimulationResult,
}

/// Runs the paper's policy comparison (OPT, TQ, LRU, ARC, CLIC) over `trace`
/// at each of the given server-cache sizes.
///
/// The (policy, cache size) cells are independent simulations; they are
/// fanned across the pool's worker threads through
/// [`cache_sim::compare_policies`] — at most [`ThreadPool::jobs`] at a time
/// (unlike the old one-thread-per-cell scheme) — and returned in exactly the
/// order the serial nested loop over `policies` × `cache_sizes` would
/// produce, with bit-identical results at any job count.
pub fn run_policy_comparison(
    pool: &ThreadPool,
    trace: &Trace,
    cache_sizes: &[usize],
    policies: &[&str],
) -> Vec<ComparisonPoint> {
    // The OPT oracle is the same for every cache size; build it once.
    let oracle = if policies.contains(&"OPT") {
        Some(NextUseOracle::build(trace))
    } else {
        None
    };
    let window = window_for_trace(trace);
    let cells: Vec<(&str, usize)> = policies
        .iter()
        .flat_map(|&policy| cache_sizes.iter().map(move |&size| (policy, size)))
        .collect();
    let results = compare_policies(pool, trace, &cells, |&(policy_name, cache_pages)| {
        if policy_name == "OPT" {
            Box::new(Opt::with_oracle(
                oracle.clone().expect("oracle built for OPT"),
                cache_pages,
            ))
        } else {
            build_policy(policy_name, trace, cache_pages, window)
        }
    });
    cells
        .into_iter()
        .zip(results)
        .map(|((policy, cache_pages), result)| ComparisonPoint {
            policy: policy.to_string(),
            cache_pages,
            result,
        })
        .collect()
}

/// A printable result table (one per figure/table of the paper).
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    /// Table title (e.g. `"Figure 6: DB2_C60"`).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        ResultTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table to stdout and writes `<stem>.txt` / `<stem>.csv`
    /// under `out_dir`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the output directory or files.
    pub fn emit(&self, out_dir: &Path, stem: &str) -> std::io::Result<()> {
        println!("{}", self.to_text());
        fs::create_dir_all(out_dir)?;
        fs::write(out_dir.join(format!("{stem}.txt")), self.to_text())?;
        fs::write(out_dir.join(format!("{stem}.csv")), self.to_csv())?;
        Ok(())
    }
}

/// Builds the standard "read hit ratio by cache size" table used by
/// Figures 6-8: one row per policy, one column per server cache size.
pub fn comparison_table(
    title: impl Into<String>,
    points: &[ComparisonPoint],
    cache_sizes: &[usize],
    policies: &[&str],
) -> ResultTable {
    let mut header = vec!["policy".to_string()];
    for &size in cache_sizes {
        header.push(format!("{size} pages"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = ResultTable::new(title, &header_refs);
    for &policy in policies {
        let mut row = vec![policy.to_string()];
        for &size in cache_sizes {
            let point = points
                .iter()
                .find(|p| p.policy == policy && p.cache_pages == size);
            match point {
                Some(p) => row.push(format!("{:.1}%", p.result.read_hit_ratio() * 100.0)),
                None => row.push("-".to_string()),
            }
        }
        table.push_row(row);
    }
    table
}

/// The headline metrics of a policy-comparison figure as a [`JsonValue`]:
/// `{"cache_sizes": [...], "policies": {"OPT": [ratio, ...], ...}}` with one
/// read-hit-ratio entry per cache size, in `cache_sizes` order.
pub fn comparison_metrics(
    points: &[ComparisonPoint],
    cache_sizes: &[usize],
    policies: &[&str],
) -> JsonValue {
    let ratios = |policy: &str| {
        JsonValue::Array(
            cache_sizes
                .iter()
                .map(|&size| {
                    points
                        .iter()
                        .find(|p| p.policy == policy && p.cache_pages == size)
                        .map(|p| JsonValue::num(p.result.read_hit_ratio()))
                        .unwrap_or(JsonValue::Null)
                })
                .collect(),
        )
    };
    JsonValue::object([
        (
            "cache_sizes",
            JsonValue::Array(
                cache_sizes
                    .iter()
                    .map(|&s| JsonValue::num(s as f64))
                    .collect(),
            ),
        ),
        (
            "policies",
            JsonValue::object(policies.iter().map(|&p| (p, ratios(p)))),
        ),
    ])
}

/// Parses a `--jobs` flag value: a positive integer. The single source of
/// truth for jobs-flag validation, shared by [`ExperimentContext::from_args`]
/// and `run_all`'s forward-the-rest argument parser.
///
/// # Panics
///
/// Panics with a usage message unless `value` is a positive integer.
pub fn parse_jobs_arg(value: &str) -> usize {
    value
        .parse::<usize>()
        .ok()
        .filter(|&jobs| jobs > 0)
        .unwrap_or_else(|| panic!("--jobs requires a positive integer, got '{value}'"))
}

/// Common command-line context for the experiment binaries.
///
/// Every binary accepts `--scale smoke|default|paper` (default `default`),
/// `--out-dir <dir>` (default `results/`), `--quick` as an alias for
/// `--scale smoke`, `--jobs <n>` to size the simulation thread pool (default
/// [`cache_sim::default_jobs`]: the `CLIC_JOBS` environment variable, else
/// the machine's available parallelism), and `--json <path>` to write the
/// experiment's machine-readable report (see the [crate-level
/// docs](crate#json-report-schema) for the schema).
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The workload scale to run at.
    pub scale: PresetScale,
    /// Directory that receives `.txt`/`.csv` outputs.
    pub out_dir: PathBuf,
    /// Worker threads for the experiment's simulation grid.
    pub jobs: usize,
    /// Where to write the machine-readable report, if requested.
    pub json_path: Option<PathBuf>,
    /// When the context was created; [`ExperimentContext::emit_json`]
    /// reports the elapsed time since as `wall_time_s`.
    started: Instant,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            scale: PresetScale::Default,
            out_dir: PathBuf::from("results"),
            jobs: cache_sim::default_jobs(),
            json_path: None,
            started: Instant::now(),
        }
    }
}

impl ExperimentContext {
    /// Parses the context from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown arguments.
    pub fn from_args() -> Self {
        let mut ctx = ExperimentContext::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    let value = args.get(i).expect("--scale requires a value");
                    ctx.scale = PresetScale::from_name(value)
                        .unwrap_or_else(|| panic!("unknown scale '{value}' (smoke|default|paper)"));
                }
                "--quick" => ctx.scale = PresetScale::Smoke,
                "--out-dir" => {
                    i += 1;
                    ctx.out_dir = PathBuf::from(args.get(i).expect("--out-dir requires a value"));
                }
                "--jobs" => {
                    i += 1;
                    ctx.jobs = parse_jobs_arg(args.get(i).expect("--jobs requires a value"));
                }
                "--json" => {
                    i += 1;
                    ctx.json_path =
                        Some(PathBuf::from(args.get(i).expect("--json requires a value")));
                }
                "--help" | "-h" => {
                    println!(
                        "usage: <experiment> [--scale smoke|default|paper] [--quick] \
                         [--out-dir DIR] [--jobs N] [--json PATH]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument '{other}' (try --help)"),
            }
            i += 1;
        }
        ctx
    }

    /// A human-readable label for the current scale.
    pub fn scale_label(&self) -> &'static str {
        match self.scale {
            PresetScale::Smoke => "smoke",
            PresetScale::Default => "default",
            PresetScale::Paper => "paper",
        }
    }

    /// The thread pool every experiment grid should run on (sized by
    /// `--jobs`).
    pub fn pool(&self) -> ThreadPool {
        ThreadPool::new(self.jobs)
    }

    /// Writes the experiment's machine-readable report — experiment name,
    /// scale, job count, wall time since the context was parsed, and the
    /// given headline `metrics` — to the `--json` path. A no-op when `--json`
    /// was not passed.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the parent directory or writing
    /// the file.
    pub fn emit_json(&self, experiment: &str, metrics: JsonValue) -> std::io::Result<()> {
        let Some(path) = &self.json_path else {
            return Ok(());
        };
        let report = JsonValue::object([
            ("experiment", JsonValue::str(experiment)),
            ("scale", JsonValue::str(self.scale_label())),
            ("jobs", JsonValue::num(self.jobs as f64)),
            (
                "wall_time_s",
                JsonValue::num(self.started.elapsed().as_secs_f64()),
            ),
            ("metrics", metrics),
        ]);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        fs::write(path, format!("{report}\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, TraceBuilder};

    fn toy_trace() -> Trace {
        let mut b = TraceBuilder::new().with_name("toy");
        let c = b.add_client("t", &[("kind", 2)]);
        let hot = b.intern_hints(c, &[0]);
        let cold = b.intern_hints(c, &[1]);
        for i in 0..20_000u64 {
            b.push(c, i % 100, AccessKind::Read, None, hot);
            b.push(c, 10_000 + i, AccessKind::Read, None, cold);
        }
        b.build()
    }

    #[test]
    fn build_policy_covers_all_names() {
        let trace = toy_trace();
        for name in PAPER_POLICIES {
            let p = build_policy(name, &trace, 64, 1_000);
            assert_eq!(p.capacity(), 64);
        }
        let topk = build_policy("CLIC(k=5)", &trace, 64, 1_000);
        assert!(topk.name().contains("k=5"));
    }

    #[test]
    #[should_panic(expected = "unknown policy")]
    fn build_policy_rejects_unknown_names() {
        let trace = toy_trace();
        let _ = build_policy("MAGIC", &trace, 8, 100);
    }

    #[test]
    fn comparison_runs_and_opt_dominates() {
        let trace = toy_trace();
        let sizes = [64usize, 128];
        let points = run_policy_comparison(&ThreadPool::new(2), &trace, &sizes, &PAPER_POLICIES);
        assert_eq!(points.len(), PAPER_POLICIES.len() * sizes.len());
        for &size in &sizes {
            let ratio = |name: &str| {
                points
                    .iter()
                    .find(|p| p.policy == name && p.cache_pages == size)
                    .unwrap()
                    .result
                    .read_hit_ratio()
            };
            assert!(ratio("OPT") >= ratio("LRU") - 1e-9);
            assert!(ratio("OPT") >= ratio("CLIC") - 1e-9);
            assert!(ratio("OPT") >= ratio("ARC") - 1e-9);
        }
    }

    #[test]
    fn result_table_renders_text_and_csv() {
        let mut t = ResultTable::new("Figure X", &["policy", "60k"]);
        t.push_row(vec!["LRU".into(), "12.3%".into()]);
        t.push_row(vec!["CLIC".into(), "45.6%".into()]);
        let text = t.to_text();
        assert!(text.contains("Figure X"));
        assert!(text.contains("CLIC"));
        let csv = t.to_csv();
        assert!(csv.starts_with("policy,60k"));
        assert!(csv.contains("45.6%"));
    }

    #[test]
    fn comparison_table_has_one_row_per_policy() {
        let trace = toy_trace();
        let sizes = [32usize];
        let points = run_policy_comparison(&ThreadPool::new(1), &trace, &sizes, &["LRU", "CLIC"]);
        let table = comparison_table("t", &points, &sizes, &["LRU", "CLIC"]);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.header.len(), 2);
    }

    #[test]
    fn comparison_is_bit_identical_across_job_counts() {
        // The acceptance bar for the parallel replay engine: any job count
        // produces the statistics (and ordering) of the serial path.
        let trace = toy_trace();
        let sizes = [32usize, 64, 96];
        let policies = ["LRU", "ARC", "CLIC"];
        let serial = run_policy_comparison(&ThreadPool::new(1), &trace, &sizes, &policies);
        for jobs in [2, 3, 8] {
            let parallel = run_policy_comparison(&ThreadPool::new(jobs), &trace, &sizes, &policies);
            assert_eq!(parallel.len(), serial.len());
            for (p, s) in parallel.iter().zip(&serial) {
                assert_eq!(p.policy, s.policy, "jobs = {jobs}");
                assert_eq!(p.cache_pages, s.cache_pages, "jobs = {jobs}");
                assert_eq!(p.result.stats, s.result.stats, "jobs = {jobs}");
                assert_eq!(p.result.per_client, s.result.per_client, "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn comparison_metrics_serializes_the_grid() {
        let trace = toy_trace();
        let sizes = [32usize, 64];
        let points = run_policy_comparison(&ThreadPool::new(2), &trace, &sizes, &["LRU"]);
        let metrics = comparison_metrics(&points, &sizes, &["LRU"]).to_string();
        assert!(metrics.starts_with("{\"cache_sizes\":[32,64],\"policies\":{\"LRU\":["));
        // A policy with no points serializes as nulls, not a panic.
        let empty = comparison_metrics(&[], &sizes, &["ARC"]).to_string();
        assert!(empty.contains("\"ARC\":[null,null]"));
    }

    #[test]
    fn emit_json_writes_the_report_envelope() {
        let dir = std::env::temp_dir().join(format!("clic-bench-test-{}", std::process::id()));
        let path = dir.join("report.json");
        let ctx = ExperimentContext {
            json_path: Some(path.clone()),
            jobs: 3,
            ..ExperimentContext::default()
        };
        ctx.emit_json("unit_test", JsonValue::object([("x", JsonValue::num(1.5))]))
            .expect("report written");
        let text = fs::read_to_string(&path).expect("report readable");
        assert!(text.starts_with("{\"experiment\":\"unit_test\",\"scale\":\"default\",\"jobs\":3,"));
        assert!(text.contains("\"metrics\":{\"x\":1.5}"));
        fs::remove_dir_all(&dir).ok();
        // Without --json the call is a no-op.
        let silent = ExperimentContext::default();
        silent
            .emit_json("unit_test", JsonValue::Null)
            .expect("no-op");
    }

    #[test]
    fn window_scales_with_trace_length() {
        let trace = toy_trace();
        let w = window_for_trace(&trace);
        assert!(w >= 1_000);
        assert!(w <= 1_000_000);
        assert_eq!(w, clic_core::suggested_window(trace.len() as u64));
        // ~80 evaluations per run, clamped below by 1 000 requests.
        assert_eq!(clic_core::suggested_window(800_000), 10_000);
        assert_eq!(clic_core::suggested_window(10_000), 1_000);
        assert_eq!(clic_core::suggested_window(1_000_000_000), 1_000_000);
    }
}
