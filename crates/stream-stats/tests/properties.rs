//! Property-based tests for the frequent-item estimators: the published
//! error guarantees must hold for arbitrary streams.

use std::collections::HashMap;

use proptest::collection::vec;
use proptest::prelude::*;

use stream_stats::{ExactCounter, FrequencyEstimator, LossyCounting, MisraGries, SpaceSaving};

fn exact_counts(stream: &[u16]) -> HashMap<u16, u64> {
    let mut counts = HashMap::new();
    for &x in stream {
        *counts.entry(x).or_insert(0u64) += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Space-Saving invariants (Metwally et al.):
    /// * estimates never undercount,
    /// * `count - error` never overcounts,
    /// * any item with true frequency > N/k is monitored,
    /// * at most k items are monitored.
    #[test]
    fn space_saving_error_bounds(
        stream in vec(0u16..50, 1..2000),
        k in 1usize..20,
    ) {
        let mut ss: SpaceSaving<u16> = SpaceSaving::new(k);
        for &x in &stream {
            ss.observe(x);
        }
        let truth = exact_counts(&stream);
        prop_assert!(ss.len() <= k);
        prop_assert_eq!(ss.observations(), stream.len() as u64);
        for (item, estimate, _) in ss.entries() {
            let t = truth.get(&item).copied().unwrap_or(0);
            prop_assert!(estimate.count >= t, "estimate {} < true {}", estimate.count, t);
            prop_assert!(estimate.guaranteed() <= t, "guaranteed {} > true {}", estimate.guaranteed(), t);
        }
        let threshold = stream.len() as u64 / k as u64;
        for (item, &count) in &truth {
            if count > threshold {
                prop_assert!(
                    ss.is_monitored(item),
                    "item {} with count {} > N/k {} must be monitored", item, count, threshold
                );
            }
        }
    }

    /// Misra-Gries invariants: never overcounts, undercounts by at most N/(k+1),
    /// and never tracks more than k items.
    #[test]
    fn misra_gries_error_bounds(
        stream in vec(0u16..50, 1..2000),
        k in 1usize..20,
    ) {
        let mut mg = MisraGries::new(k);
        for &x in &stream {
            mg.observe(x);
        }
        let truth = exact_counts(&stream);
        prop_assert!(mg.len() <= k);
        let max_undercount = stream.len() as u64 / (k as u64 + 1);
        for (item, count) in mg.tracked() {
            let t = truth[&item];
            prop_assert!(count <= t, "MG overcounted {}: {} > {}", item, count, t);
            prop_assert!(
                t - count <= max_undercount,
                "MG undercounted {} by {} > bound {}", item, t - count, max_undercount
            );
        }
    }

    /// Lossy Counting invariant: tracked counts undercount by at most
    /// epsilon * N, and every item with true count > epsilon * N is tracked.
    #[test]
    fn lossy_counting_error_bounds(
        stream in vec(0u16..50, 1..2000),
        denom in 5u32..100,
    ) {
        let epsilon = 1.0 / f64::from(denom);
        let mut lc = LossyCounting::new(epsilon);
        for &x in &stream {
            lc.observe(x);
        }
        let truth = exact_counts(&stream);
        let n = stream.len() as f64;
        for (item, count) in lc.tracked() {
            let t = truth[&item];
            prop_assert!(count <= t);
            prop_assert!(
                (t - count) as f64 <= epsilon * n + 1.0,
                "undercount {} exceeds eps*N {}", t - count, epsilon * n
            );
        }
        for (item, &count) in &truth {
            if (count as f64) > epsilon * n + 1.0 {
                prop_assert!(
                    lc.count(item).is_some(),
                    "item {} with count {} should still be tracked", item, count
                );
            }
        }
    }

    /// The exact counter is, in fact, exact — and agrees with every other
    /// estimator's observation count.
    #[test]
    fn exact_counter_is_exact(stream in vec(0u16..50, 0..2000)) {
        let mut exact: ExactCounter<u16> = ExactCounter::new();
        for &x in &stream {
            exact.observe(x);
        }
        let truth = exact_counts(&stream);
        prop_assert_eq!(exact.distinct(), truth.len());
        for (item, &count) in &truth {
            prop_assert_eq!(exact.count(item), count);
        }
        prop_assert_eq!(exact.observations(), stream.len() as u64);
    }

    /// Clearing any estimator really forgets everything.
    #[test]
    fn clear_forgets_state(stream in vec(0u16..20, 1..200)) {
        let mut ss: SpaceSaving<u16> = SpaceSaving::new(4);
        let mut mg = MisraGries::new(4);
        let mut lc = LossyCounting::new(0.1);
        for &x in &stream {
            ss.observe(x);
            mg.observe(x);
            lc.observe(x);
        }
        ss.clear();
        mg.clear();
        FrequencyEstimator::clear(&mut lc);
        prop_assert!(ss.is_empty());
        prop_assert!(mg.is_empty());
        prop_assert!(lc.is_empty());
        prop_assert_eq!(ss.observations(), 0);
        prop_assert_eq!(mg.observations(), 0);
        prop_assert_eq!(lc.observations(), 0);
    }

    /// The auxiliary payload attached to Space-Saving counters never leaks
    /// from one item to another across recycling.
    #[test]
    fn space_saving_aux_never_leaks(stream in vec(0u16..30, 1..500), k in 1usize..6) {
        #[derive(Default, Clone, Debug, PartialEq)]
        struct Tag(Option<u16>);
        let mut ss: SpaceSaving<u16, Tag> = SpaceSaving::new(k);
        for &x in &stream {
            let aux = ss.observe_mut(x);
            match aux.0 {
                None => aux.0 = Some(x),
                Some(owner) => prop_assert_eq!(owner, x, "aux payload leaked across items"),
            }
        }
    }
}
