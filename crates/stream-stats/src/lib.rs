//! Streaming frequent-item estimation for the CLIC reproduction.
//!
//! CLIC bounds the space needed to track hint-set statistics by tracking only
//! the most frequently occurring hint sets, using the **Space-Saving**
//! algorithm of Metwally, Agrawal & El Abbadi (ICDT '05), slightly adapted to
//! carry auxiliary per-item counters (the `Nr(H)` and `D(H)` statistics of
//! the paper's Section 5).
//!
//! This crate provides:
//!
//! * [`SpaceSaving`] — the Space-Saving algorithm, generic over the item type
//!   and over an auxiliary payload attached to each monitored counter (the
//!   CLIC adaptation),
//! * [`ExactCounter`] — exact frequency counting, used to verify the
//!   approximate algorithms in tests and in the accuracy ablation,
//! * [`MisraGries`] and [`LossyCounting`] — two alternative frequent-item
//!   algorithms used by the ablation benchmark that justifies the paper's
//!   choice of Space-Saving,
//! * the [`FrequencyEstimator`] trait that all of the above implement.
//!
//! # Example
//!
//! ```
//! use stream_stats::{FrequencyEstimator, SpaceSaving};
//!
//! let mut ss: SpaceSaving<&str> = SpaceSaving::new(2);
//! for item in ["a", "b", "a", "c", "a", "a", "b"] {
//!     ss.observe(item);
//! }
//! // "a" is genuinely frequent and must be monitored with a tight estimate.
//! let est = ss.estimate(&"a").expect("a is monitored");
//! assert!(est.count >= 4);
//! assert_eq!(ss.observations(), 7);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod exact;
pub mod lossy;
pub mod misra_gries;
pub mod space_saving;

pub use exact::ExactCounter;
pub use lossy::LossyCounting;
pub use misra_gries::MisraGries;
pub use space_saving::{Estimate, SpaceSaving};

use std::hash::Hash;

/// Common interface over frequency estimators, used by the accuracy/space
/// ablation that compares Space-Saving against alternatives.
pub trait FrequencyEstimator<T: Eq + Hash + Clone> {
    /// Records one occurrence of `item`.
    fn observe(&mut self, item: T);

    /// Returns the estimated number of occurrences of `item`, or `None` if
    /// the estimator is not currently tracking it.
    fn estimated_count(&self, item: &T) -> Option<u64>;

    /// Returns the tracked items with their estimated counts, ordered from
    /// most to least frequent.
    fn tracked(&self) -> Vec<(T, u64)>;

    /// Total number of observations made so far.
    fn observations(&self) -> u64;

    /// Forgets all state (used at CLIC window boundaries).
    fn clear(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All estimators must agree with exact counting on a stream whose
    /// distinct-item count fits within their budget.
    #[test]
    fn estimators_are_exact_when_capacity_suffices() {
        let stream: Vec<u32> = (0..1000u32).map(|i| i % 7).collect();
        let mut exact = ExactCounter::new();
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(16);
        let mut mg = MisraGries::new(16);
        let mut lossy = LossyCounting::new(0.01);
        for &x in &stream {
            exact.observe(x);
            ss.observe(x);
            mg.observe(x);
            lossy.observe(x);
        }
        for item in 0..7u32 {
            let truth = exact.estimated_count(&item).unwrap();
            assert_eq!(
                ss.estimate(&item).unwrap().count,
                truth,
                "space-saving item {item}"
            );
            assert_eq!(
                mg.estimated_count(&item).unwrap(),
                truth,
                "misra-gries item {item}"
            );
            assert_eq!(
                lossy.estimated_count(&item).unwrap(),
                truth,
                "lossy item {item}"
            );
        }
    }

    #[test]
    fn observations_are_counted_by_all_estimators() {
        let mut ss: SpaceSaving<u8> = SpaceSaving::new(2);
        let mut mg = MisraGries::new(2);
        let mut lossy = LossyCounting::new(0.1);
        let mut exact = ExactCounter::new();
        for x in [1u8, 2, 3, 4, 1, 1] {
            ss.observe(x);
            mg.observe(x);
            lossy.observe(x);
            exact.observe(x);
        }
        for obs in [
            FrequencyEstimator::observations(&ss),
            mg.observations(),
            lossy.observations(),
            exact.observations(),
        ] {
            assert_eq!(obs, 6);
        }
    }
}
