//! Lossy Counting (Manku & Motwani, VLDB '02).
//!
//! Divides the stream into buckets of width `⌈1/ε⌉`. Every tracked item
//! carries a count and the maximum possible undercount `delta` (the bucket in
//! which it was first tracked minus one). At bucket boundaries, items whose
//! `count + delta` no longer exceeds the current bucket id are pruned.
//! Included as the third alternative in the frequent-item ablation.

use std::collections::HashMap;
use std::hash::Hash;

use crate::FrequencyEstimator;

#[derive(Debug, Clone, Copy)]
struct Tracked {
    count: u64,
    delta: u64,
}

/// The Lossy Counting summary with error parameter `epsilon`.
#[derive(Debug, Clone)]
pub struct LossyCounting<T>
where
    T: Eq + Hash + Clone,
{
    bucket_width: u64,
    current_bucket: u64,
    entries: HashMap<T, Tracked>,
    observations: u64,
}

impl<T> LossyCounting<T>
where
    T: Eq + Hash + Clone,
{
    /// Creates a summary with error bound `epsilon` (counts are
    /// underestimated by at most `epsilon * observations`).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0, 1), got {epsilon}"
        );
        LossyCounting {
            bucket_width: (1.0 / epsilon).ceil() as u64,
            current_bucket: 1,
            entries: HashMap::new(),
            observations: 0,
        }
    }

    /// Records one occurrence of `item`.
    pub fn observe(&mut self, item: T) {
        self.observations += 1;
        match self.entries.get_mut(&item) {
            Some(t) => t.count += 1,
            None => {
                self.entries.insert(
                    item,
                    Tracked {
                        count: 1,
                        delta: self.current_bucket - 1,
                    },
                );
            }
        }
        if self.observations % self.bucket_width == 0 {
            let bucket = self.current_bucket;
            self.entries.retain(|_, t| t.count + t.delta > bucket);
            self.current_bucket += 1;
        }
    }

    /// The tracked count of `item` (an underestimate), if still tracked.
    pub fn count(&self, item: &T) -> Option<u64> {
        self.entries.get(item).map(|t| t.count)
    }

    /// Number of items currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total observations so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Forgets everything (the error parameter is retained).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.observations = 0;
        self.current_bucket = 1;
    }
}

impl<T> FrequencyEstimator<T> for LossyCounting<T>
where
    T: Eq + Hash + Clone,
{
    fn observe(&mut self, item: T) {
        LossyCounting::observe(self, item);
    }

    fn estimated_count(&self, item: &T) -> Option<u64> {
        self.count(item)
    }

    fn tracked(&self) -> Vec<(T, u64)> {
        let mut all: Vec<(T, u64)> = self
            .entries
            .iter()
            .map(|(item, t)| (item.clone(), t.count))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1));
        all
    }

    fn observations(&self) -> u64 {
        LossyCounting::observations(self)
    }

    fn clear(&mut self) {
        LossyCounting::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequent_items_survive_pruning() {
        let mut lc = LossyCounting::new(0.05); // bucket width 20
        for i in 0..2000u64 {
            lc.observe(1u8); // every other observation is item 1
            lc.observe((i % 97 + 10) as u8);
        }
        let est = lc.count(&1).expect("heavy hitter must survive");
        let truth = 2000;
        assert!(est <= truth);
        assert!(
            (truth - est) as f64 <= 0.05 * lc.observations() as f64 + 1.0,
            "undercount {} exceeds the epsilon bound",
            truth - est
        );
    }

    #[test]
    fn infrequent_items_are_pruned() {
        let mut lc = LossyCounting::new(0.1); // bucket width 10
                                              // 200 distinct one-shot items: almost all must be pruned.
        for i in 0..200u64 {
            lc.observe(i);
        }
        assert!(
            lc.len() < 20,
            "one-shot items should be pruned, kept {}",
            lc.len()
        );
    }

    #[test]
    fn clear_resets_buckets() {
        let mut lc = LossyCounting::new(0.5);
        for i in 0..10u64 {
            lc.observe(i);
        }
        lc.clear();
        assert!(lc.is_empty());
        assert_eq!(lc.observations(), 0);
        lc.observe(3);
        assert_eq!(lc.count(&3), Some(1));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_rejected() {
        let _ = LossyCounting::<u8>::new(1.5);
    }
}
