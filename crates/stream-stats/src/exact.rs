//! Exact frequency counting, used as ground truth for the approximate
//! frequent-item algorithms and for CLIC's "track every hint set" mode.

use std::collections::HashMap;
use std::hash::Hash;

use crate::FrequencyEstimator;

/// A plain hash-map counter: unbounded space, exact answers.
#[derive(Debug, Clone, Default)]
pub struct ExactCounter<T = u64>
where
    T: Eq + Hash + Clone,
{
    counts: HashMap<T, u64>,
    observations: u64,
}

impl<T> ExactCounter<T>
where
    T: Eq + Hash + Clone,
{
    /// Creates an empty counter.
    pub fn new() -> Self {
        ExactCounter {
            counts: HashMap::new(),
            observations: 0,
        }
    }

    /// Records one occurrence of `item`.
    pub fn observe(&mut self, item: T) {
        *self.counts.entry(item).or_default() += 1;
        self.observations += 1;
    }

    /// Returns the exact count of `item` (0 if never seen).
    pub fn count(&self, item: &T) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Number of distinct items seen.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// The `k` most frequent items with their counts, most frequent first.
    /// Ties are broken arbitrarily but deterministically for a given map
    /// iteration order after sorting by count.
    pub fn top_k(&self, k: usize) -> Vec<(T, u64)> {
        let mut all: Vec<(T, u64)> = self
            .counts
            .iter()
            .map(|(item, &c)| (item.clone(), c))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1));
        all.truncate(k);
        all
    }

    /// Total observations so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Iterates over `(item, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, u64)> {
        self.counts.iter().map(|(item, &c)| (item, c))
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.observations = 0;
    }
}

impl<T> FrequencyEstimator<T> for ExactCounter<T>
where
    T: Eq + Hash + Clone,
{
    fn observe(&mut self, item: T) {
        ExactCounter::observe(self, item);
    }

    fn estimated_count(&self, item: &T) -> Option<u64> {
        let c = self.count(item);
        if c == 0 {
            None
        } else {
            Some(c)
        }
    }

    fn tracked(&self) -> Vec<(T, u64)> {
        self.top_k(self.counts.len())
    }

    fn observations(&self) -> u64 {
        ExactCounter::observations(self)
    }

    fn clear(&mut self) {
        ExactCounter::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact() {
        let mut c: ExactCounter<&str> = ExactCounter::new();
        for item in ["x", "y", "x", "x"] {
            c.observe(item);
        }
        assert_eq!(c.count(&"x"), 3);
        assert_eq!(c.count(&"y"), 1);
        assert_eq!(c.count(&"z"), 0);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.observations(), 4);
    }

    #[test]
    fn top_k_orders_by_count() {
        let mut c: ExactCounter<u8> = ExactCounter::new();
        for x in [1u8, 2, 2, 3, 3, 3, 4] {
            c.observe(x);
        }
        let top = c.top_k(2);
        assert_eq!(top[0], (3, 3));
        assert_eq!(top[1], (2, 2));
        assert_eq!(c.top_k(0).len(), 0);
        assert_eq!(c.top_k(100).len(), 4);
    }

    #[test]
    fn clear_resets() {
        let mut c: ExactCounter<u8> = ExactCounter::new();
        c.observe(1);
        c.clear();
        assert_eq!(c.distinct(), 0);
        assert_eq!(c.observations(), 0);
        assert_eq!(FrequencyEstimator::estimated_count(&c, &1), None);
    }
}
