//! The Misra-Gries frequent-item summary (a.k.a. the "Frequent" algorithm).
//!
//! Maintains at most `k` counters. An arriving monitored item increments its
//! counter; an arriving unmonitored item either claims a free counter or
//! decrements *all* counters (dropping any that reach zero). Counts are
//! therefore *under*-estimates — the opposite bias from Space-Saving — which
//! is why the ablation benchmark compares the two.

use std::collections::HashMap;
use std::hash::Hash;

use crate::FrequencyEstimator;

/// The Misra-Gries summary with `k` counters.
#[derive(Debug, Clone)]
pub struct MisraGries<T>
where
    T: Eq + Hash + Clone,
{
    capacity: usize,
    counts: HashMap<T, u64>,
    observations: u64,
}

impl<T> MisraGries<T>
where
    T: Eq + Hash + Clone,
{
    /// Creates a summary with `k` counters.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "misra-gries capacity must be positive");
        MisraGries {
            capacity: k,
            counts: HashMap::with_capacity(k),
            observations: 0,
        }
    }

    /// Records one occurrence of `item`.
    pub fn observe(&mut self, item: T) {
        self.observations += 1;
        if let Some(c) = self.counts.get_mut(&item) {
            *c += 1;
            return;
        }
        if self.counts.len() < self.capacity {
            self.counts.insert(item, 1);
            return;
        }
        // Decrement every counter; drop the ones that hit zero.
        self.counts.retain(|_, c| {
            *c -= 1;
            *c > 0
        });
    }

    /// Underestimated count of `item`, if currently tracked.
    pub fn count(&self, item: &T) -> Option<u64> {
        self.counts.get(item).copied()
    }

    /// Number of items currently tracked.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Maximum number of counters.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total observations so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Forgets everything.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.observations = 0;
    }
}

impl<T> FrequencyEstimator<T> for MisraGries<T>
where
    T: Eq + Hash + Clone,
{
    fn observe(&mut self, item: T) {
        MisraGries::observe(self, item);
    }

    fn estimated_count(&self, item: &T) -> Option<u64> {
        self.count(item)
    }

    fn tracked(&self) -> Vec<(T, u64)> {
        let mut all: Vec<(T, u64)> = self
            .counts
            .iter()
            .map(|(item, &c)| (item.clone(), c))
            .collect();
        all.sort_by(|a, b| b.1.cmp(&a.1));
        all
    }

    fn observations(&self) -> u64 {
        MisraGries::observations(self)
    }

    fn clear(&mut self) {
        MisraGries::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_overestimates() {
        let mut mg = MisraGries::new(2);
        let stream = [1u8, 2, 3, 1, 1, 2, 4, 1, 5, 1];
        let mut truth: HashMap<u8, u64> = HashMap::new();
        for &x in &stream {
            mg.observe(x);
            *truth.entry(x).or_default() += 1;
        }
        for (item, count) in mg.tracked() {
            assert!(count <= truth[&item], "MG must underestimate");
        }
    }

    #[test]
    fn majority_item_survives() {
        let mut mg = MisraGries::new(1);
        // Item 7 is a strict majority: with k=1 it must still be tracked.
        let stream = [7u8, 1, 7, 2, 7, 3, 7, 4, 7, 7];
        for &x in &stream {
            mg.observe(x);
        }
        assert!(mg.count(&7).is_some());
    }

    #[test]
    fn decrement_drops_zeroed_counters() {
        let mut mg = MisraGries::new(2);
        mg.observe(1u8);
        mg.observe(2);
        mg.observe(3); // decrements both to zero and drops them
        assert!(mg.is_empty());
        assert_eq!(mg.observations(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MisraGries::<u8>::new(0);
    }
}
