//! The Space-Saving frequent-item algorithm (Metwally et al., ICDT '05),
//! extended with auxiliary per-counter payloads as required by CLIC.
//!
//! Space-Saving monitors at most `k` items. When an unmonitored item arrives
//! and all `k` counters are occupied, the item with the *minimum* count is
//! replaced: the new item inherits the old count plus one and records the old
//! count as its *error bound*. The guarantees are:
//!
//! * every monitored item's true count is at most its estimated `count` and
//!   at least `count - error`,
//! * any item whose true frequency exceeds `observations / k` is guaranteed
//!   to be monitored.
//!
//! CLIC attaches additional statistics (`Nr(H)`, a re-reference distance
//! accumulator) to each monitored hint set; these must be reset whenever the
//! counter is recycled for a different hint set. [`SpaceSaving`] therefore
//! carries a generic auxiliary payload `A` per counter that is reset to
//! `A::default()` on recycling.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::Hash;

use crate::FrequencyEstimator;

/// Frequency estimate for a monitored item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Estimate {
    /// Estimated (over-)count of the item.
    pub count: u64,
    /// Maximum possible overestimation: the true count is at least
    /// `count - error`.
    pub error: u64,
}

impl Estimate {
    /// A conservative lower bound on the item's true count (`count - error`).
    /// This is the value the paper uses as `N(H)`.
    pub fn guaranteed(&self) -> u64 {
        self.count.saturating_sub(self.error)
    }
}

#[derive(Debug, Clone)]
struct Entry<A> {
    count: u64,
    error: u64,
    aux: A,
}

/// The Space-Saving summary: monitors at most `k` items together with an
/// auxiliary payload per monitored item.
///
/// The default payload is `()`; CLIC instantiates `A` with its re-reference
/// statistics.
#[derive(Debug, Clone)]
pub struct SpaceSaving<T, A = ()>
where
    T: Ord + Hash + Clone,
    A: Default,
{
    capacity: usize,
    entries: HashMap<T, Entry<A>>,
    // count -> set of items with that count; the first key is the minimum.
    // Ordered sets make victim selection deterministic: among equal-count
    // candidates the *smallest* item is recycled, so two summaries fed the
    // same observation stream always evolve identically (the policy's
    // differential and sharded-server bit-exactness tests rely on this).
    buckets: BTreeMap<u64, BTreeSet<T>>,
    observations: u64,
}

impl<T, A> SpaceSaving<T, A>
where
    T: Ord + Hash + Clone,
    A: Default,
{
    /// Creates a summary monitoring at most `k` items.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "space-saving capacity must be positive");
        SpaceSaving {
            capacity: k,
            entries: HashMap::with_capacity(k),
            buckets: BTreeMap::new(),
            observations: 0,
        }
    }

    /// Maximum number of items monitored simultaneously.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently monitored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no items are monitored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of observations since creation or the last [`clear`].
    ///
    /// [`clear`]: SpaceSaving::clear
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Returns `true` if `item` is currently monitored.
    pub fn is_monitored(&self, item: &T) -> bool {
        self.entries.contains_key(item)
    }

    /// Records one occurrence of `item`, returning a mutable reference to its
    /// auxiliary payload. If the item was not monitored and a counter had to
    /// be recycled, the payload starts fresh at `A::default()`.
    pub fn observe_mut(&mut self, item: T) -> &mut A {
        self.observations += 1;
        if let Some(entry) = self.entries.get(&item) {
            let old_count = entry.count;
            self.remove_from_bucket(&item, old_count);
            self.add_to_bucket(item.clone(), old_count + 1);
            let entry = self.entries.get_mut(&item).expect("entry exists");
            entry.count += 1;
            return &mut self.entries.get_mut(&item).expect("entry exists").aux;
        }
        if self.entries.len() < self.capacity {
            self.add_to_bucket(item.clone(), 1);
            self.entries.insert(
                item.clone(),
                Entry {
                    count: 1,
                    error: 0,
                    aux: A::default(),
                },
            );
            return &mut self.entries.get_mut(&item).expect("just inserted").aux;
        }
        // Recycle the minimum-count entry.
        let (min_count, victim) = {
            let (count, set) = self
                .buckets
                .iter()
                .next()
                .expect("capacity > 0 and entries is full");
            let victim = set
                .iter()
                .next()
                .expect("bucket sets are non-empty")
                .clone();
            (*count, victim)
        };
        self.remove_from_bucket(&victim, min_count);
        self.entries.remove(&victim);
        self.add_to_bucket(item.clone(), min_count + 1);
        self.entries.insert(
            item.clone(),
            Entry {
                count: min_count + 1,
                error: min_count,
                aux: A::default(),
            },
        );
        &mut self.entries.get_mut(&item).expect("just inserted").aux
    }

    /// Records one occurrence of `item` (discarding the payload reference).
    pub fn observe(&mut self, item: T) {
        let _ = self.observe_mut(item);
    }

    /// Returns the frequency estimate for `item`, if it is monitored.
    pub fn estimate(&self, item: &T) -> Option<Estimate> {
        self.entries.get(item).map(|e| Estimate {
            count: e.count,
            error: e.error,
        })
    }

    /// Returns the auxiliary payload for `item`, if monitored.
    pub fn aux(&self, item: &T) -> Option<&A> {
        self.entries.get(item).map(|e| &e.aux)
    }

    /// Returns a mutable reference to the auxiliary payload for `item`
    /// without recording an observation.
    pub fn aux_mut(&mut self, item: &T) -> Option<&mut A> {
        self.entries.get_mut(item).map(|e| &mut e.aux)
    }

    /// Returns all monitored items with their estimates and payloads, sorted
    /// by decreasing estimated count (ties by ascending item, so the output
    /// order is deterministic).
    pub fn entries(&self) -> Vec<(T, Estimate, &A)> {
        let mut out: Vec<(T, Estimate, &A)> = self
            .entries
            .iter()
            .map(|(item, e)| {
                (
                    item.clone(),
                    Estimate {
                        count: e.count,
                        error: e.error,
                    },
                    &e.aux,
                )
            })
            .collect();
        out.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Returns the monitored items that are *guaranteed* to be among the true
    /// top-`len()` items (their guaranteed count exceeds the smallest
    /// estimated count among the others).
    pub fn guaranteed_frequent(&self) -> Vec<T> {
        let min_count = self.buckets.keys().next().copied().unwrap_or(0);
        self.entries
            .iter()
            .filter(|(_, e)| e.count.saturating_sub(e.error) >= min_count)
            .map(|(item, _)| item.clone())
            .collect()
    }

    /// Forgets all monitored items and resets the observation count. CLIC
    /// calls this at every window boundary (Section 5).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.buckets.clear();
        self.observations = 0;
    }

    fn add_to_bucket(&mut self, item: T, count: u64) {
        self.buckets.entry(count).or_default().insert(item);
    }

    fn remove_from_bucket(&mut self, item: &T, count: u64) {
        if let Some(set) = self.buckets.get_mut(&count) {
            set.remove(item);
            if set.is_empty() {
                self.buckets.remove(&count);
            }
        }
    }
}

impl<T> FrequencyEstimator<T> for SpaceSaving<T, ()>
where
    T: Ord + Hash + Clone,
{
    fn observe(&mut self, item: T) {
        SpaceSaving::observe(self, item);
    }

    fn estimated_count(&self, item: &T) -> Option<u64> {
        self.estimate(item).map(|e| e.count)
    }

    fn tracked(&self) -> Vec<(T, u64)> {
        self.entries()
            .into_iter()
            .map(|(item, est, _)| (item, est.count))
            .collect()
    }

    fn observations(&self) -> u64 {
        SpaceSaving::observations(self)
    }

    fn clear(&mut self) {
        SpaceSaving::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exactly_when_under_capacity() {
        let mut ss: SpaceSaving<char> = SpaceSaving::new(8);
        for c in "aaabbc".chars() {
            ss.observe(c);
        }
        assert_eq!(ss.estimate(&'a'), Some(Estimate { count: 3, error: 0 }));
        assert_eq!(ss.estimate(&'b'), Some(Estimate { count: 2, error: 0 }));
        assert_eq!(ss.estimate(&'c'), Some(Estimate { count: 1, error: 0 }));
        assert_eq!(ss.estimate(&'z'), None);
        assert_eq!(ss.len(), 3);
        assert_eq!(ss.observations(), 6);
    }

    #[test]
    fn recycles_minimum_and_records_error() {
        let mut ss: SpaceSaving<char> = SpaceSaving::new(2);
        ss.observe('a');
        ss.observe('a');
        ss.observe('b');
        // 'c' arrives: the minimum counter ('b', count 1) is recycled.
        ss.observe('c');
        assert!(!ss.is_monitored(&'b'));
        let c = ss.estimate(&'c').unwrap();
        assert_eq!(c.count, 2);
        assert_eq!(c.error, 1);
        assert_eq!(c.guaranteed(), 1);
        // 'a' is untouched.
        assert_eq!(ss.estimate(&'a'), Some(Estimate { count: 2, error: 0 }));
    }

    #[test]
    fn heavy_hitter_is_always_monitored() {
        // One item takes 50% of a long stream; with k=4 it is guaranteed to
        // be monitored at the end with a close estimate.
        let mut ss: SpaceSaving<u32> = SpaceSaving::new(4);
        let mut true_count = 0u64;
        let mut noise = 0u32;
        for i in 0..10_000u64 {
            if i % 2 == 0 {
                ss.observe(42);
                true_count += 1;
            } else {
                noise = noise.wrapping_add(1).wrapping_mul(2654435761) % 1000;
                ss.observe(noise + 100);
            }
        }
        let est = ss.estimate(&42).expect("heavy hitter must be monitored");
        assert!(est.count >= true_count, "Space-Saving never undercounts");
        assert!(
            est.guaranteed() <= true_count,
            "guaranteed bound must not exceed the true count"
        );
        // The estimate should be reasonably tight for a 50% hitter.
        assert!(est.count - est.error <= true_count);
        assert!(est.count < true_count + 5_000);
    }

    #[test]
    fn aux_payload_is_reset_on_recycle() {
        #[derive(Default, Debug, PartialEq)]
        struct Aux {
            hits: u64,
        }
        let mut ss: SpaceSaving<char, Aux> = SpaceSaving::new(1);
        ss.observe_mut('a').hits = 7;
        assert_eq!(ss.aux(&'a').unwrap().hits, 7);
        // 'b' recycles 'a''s counter; its payload must start from default.
        let aux_b = ss.observe_mut('b');
        assert_eq!(aux_b.hits, 0);
        assert!(ss.aux(&'a').is_none());
        // aux_mut does not count as an observation.
        let before = ss.observations();
        ss.aux_mut(&'b').unwrap().hits += 1;
        assert_eq!(ss.observations(), before);
        assert_eq!(ss.aux(&'b').unwrap().hits, 1);
    }

    #[test]
    fn entries_are_sorted_by_count() {
        let mut ss: SpaceSaving<u8> = SpaceSaving::new(8);
        for x in [1u8, 2, 2, 3, 3, 3] {
            ss.observe(x);
        }
        let entries = ss.entries();
        let counts: Vec<u64> = entries.iter().map(|(_, e, _)| e.count).collect();
        assert_eq!(counts, vec![3, 2, 1]);
        assert_eq!(entries[0].0, 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut ss: SpaceSaving<u8> = SpaceSaving::new(2);
        ss.observe(1);
        ss.observe(2);
        ss.observe(3);
        ss.clear();
        assert!(ss.is_empty());
        assert_eq!(ss.observations(), 0);
        assert_eq!(ss.estimate(&1), None);
        // Reusable after clear.
        ss.observe(9);
        assert_eq!(ss.estimate(&9).unwrap().count, 1);
    }

    #[test]
    fn overestimate_invariant_holds_under_skewed_stream() {
        // Zipf-ish stream over 200 items, k = 10: for every monitored item,
        // count >= true >= count - error.
        let mut ss: SpaceSaving<u64> = SpaceSaving::new(10);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut state = 99u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Approximate Zipf: item = floor(200 / (1 + (r % 200)))
            let r = (state >> 33) % 200;
            let item = 200 / (1 + r);
            ss.observe(item);
            *truth.entry(item).or_default() += 1;
        }
        for (item, est, _) in ss.entries() {
            let t = truth.get(&item).copied().unwrap_or(0);
            assert!(
                est.count >= t,
                "item {item}: estimate {} < true {t}",
                est.count
            );
            assert!(
                est.guaranteed() <= t,
                "item {item}: guaranteed {} > true {t}",
                est.guaranteed()
            );
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _: SpaceSaving<u8> = SpaceSaving::new(0);
    }

    #[test]
    fn guaranteed_frequent_subset_of_monitored() {
        let mut ss: SpaceSaving<u8> = SpaceSaving::new(3);
        for x in [1u8, 1, 1, 1, 2, 2, 3, 4, 5] {
            ss.observe(x);
        }
        let guaranteed = ss.guaranteed_frequent();
        assert!(guaranteed.contains(&1));
        for g in &guaranteed {
            assert!(ss.is_monitored(g));
        }
    }
}
